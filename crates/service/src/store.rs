//! The sharded, cached workflow store.
//!
//! Workflows are spread over `N` shards by hashing their id. Each shard's
//! state lives behind a copy-on-write `SnapshotCell`: readers (`validate`,
//! `provenance`, `export`, `stats`) atomically grab an `Arc` of the current
//! immutable shard state and never block behind mutation work; mutators
//! serialise on a per-shard mutex, build the next state via `Arc::make_mut`,
//! persist it, publish it as a single pointer swap — and then fan the change
//! out to `watch` subscribers (see [`WorkflowStore::watch`]). Caching is
//! **composite-granular and keyed by mutation epoch**:
//!
//! * **Reachability reuse** — a registered [`WorkflowSpec`] is stored behind
//!   an `Arc` and its lazily built `ReachMatrix` is primed at registration
//!   time. Mutations maintain the matrix *in place* where the delta class
//!   allows (see `wolves_workflow::mutation`), so edits don't pay a rebuild
//!   either.
//! * **Verdict caching** — every stored view carries one cached soundness
//!   verdict *per composite task*, tagged with the workflow's mutation
//!   epoch. A `mutate` request invalidates only the composites whose
//!   reachability rows the edit dirtied (plus the edit's endpoints, whose
//!   boundaries may have moved); every other cached verdict is re-tagged to
//!   the new epoch and keeps serving hits.
//! * **Provenance index caching** — the per-view [`ViewProvenanceIndex`] is
//!   epoch-tagged too and survives mutations that cannot change the induced
//!   view graph (e.g. edges added inside one composite).
//!
//! Corrections still append the corrected view as a new immutable version.
//! Mutations clone the entry copy-on-write off the published snapshot, so
//! in-flight readers keep a consistent pre-mutation state for as long as
//! they hold it. Task additions/removals rebase the workflow: older view
//! versions would no longer partition the task set, so the version history
//! is truncated to the (updated) current view.
//!
//! **Durability** is layered behind [`StorageBackend`]: the default
//! [`MemoryBackend`] keeps today's in-memory behaviour at zero cost, while
//! a [`crate::wal::FileBackend`] appends every register/mutate/correct to a
//! per-shard write-ahead log (under the same per-shard mutator mutex, so
//! log order is store order) and periodically compacts it into full
//! snapshots. The append happens strictly *before* the new state is
//! published and before any watch event is fanned out — a crash never
//! leaves a subscriber holding an event the recovered store doesn't know
//! about. [`WorkflowStore::open`] recovers a backend's journal by replaying
//! it through the live request paths, restoring epochs, versions, ids,
//! change-sequence numbers and cache keying exactly.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use wolves_graph::DirtyRows;

use wolves_core::correct::{correct_view, Strategy};
use wolves_core::estimate::{CorrectionSample, EstimationRegistry, WorkloadClass};
use wolves_core::soundness::soundness_verdict;
use wolves_moml::{read_text_format, write_text_format};
use wolves_provenance::ViewProvenanceIndex;
use wolves_workflow::persist::{
    check_spec_serialisable, check_view_serialisable, spec_from_lines, spec_to_lines,
    view_from_lines, view_to_lines,
};
use wolves_workflow::{
    CompositeTaskId, SpecDelta, SpecMutation, TaskId, WorkflowSpec, WorkflowView,
};

use crate::epoch::SnapshotCell;
use crate::error::ServiceError;
use crate::obs::{
    duration_ns, seconds, write_sample, HistogramSnapshot, ServerGauges, Stage, Telemetry, Verb,
    VerbTimers, STAGES, VERBS,
};
use crate::proto::{
    Corrected, MutateOp, Mutated, ShardStat, StatsReport, Verdict, WatchEvent, WatchMode,
};
use crate::storage::{
    MemoryBackend, RecoveryReport, ShardJournal, SnapshotEntry, StorageBackend, WalRecord,
};

/// Default per-subscriber watch queue bound. A subscriber that falls this
/// many events behind the commit stream is dropped with
/// [`ServiceError::Lagged`] rather than ever back-pressuring a mutator.
pub const WATCH_QUEUE_CAP: usize = 256;

/// Identifier of a registered workflow, assigned by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkflowId(pub u64);

impl fmt::Display for WorkflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The durability obligation of one deferred mutation: which shard's WAL
/// holds its record and the group-commit ticket that must be covered by a
/// fsync before the outcome may be acknowledged. The default (zero) ticket
/// means nothing is owed — the backend's fsync policy needed no wait.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityTicket {
    shard: usize,
    ticket: u64,
}

/// Accumulated durability obligations of a pipelined batch. Tickets are
/// monotone per shard, so folding keeps only the highest ticket per shard —
/// awaiting that one covers every obligation folded before it.
#[derive(Debug, Clone, Default)]
pub struct DurabilityBarrier {
    pending: Vec<(usize, u64)>,
}

impl DurabilityBarrier {
    /// Folds one deferred mutation's obligation into the barrier.
    pub fn fold(&mut self, ticket: DurabilityTicket) {
        if ticket.ticket == 0 {
            return;
        }
        match self.pending.iter_mut().find(|(s, _)| *s == ticket.shard) {
            Some((_, high)) => *high = (*high).max(ticket.ticket),
            None => self.pending.push((ticket.shard, ticket.ticket)),
        }
    }

    /// True when nothing is owed — [`WorkflowStore::await_durability`]
    /// would return immediately.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// The cached soundness verdict of one composite task.
#[derive(Debug, Clone)]
struct CompositeSummary {
    sound: bool,
    name: String,
}

/// One composite's cache slot: the epoch it is valid for and a `OnceLock`
/// cell so exactly one racer computes per `(composite, epoch)` — everyone
/// else blocks on the cell and counts as a hit, keeping the counters
/// deterministic under concurrency.
#[derive(Debug, Clone)]
struct CachedVerdict {
    epoch: u64,
    cell: Arc<OnceLock<CompositeSummary>>,
}

/// One stored view plus its composite-granular caches.
#[derive(Debug)]
struct StoredView {
    view: Arc<WorkflowView>,
    verdicts: RwLock<HashMap<CompositeTaskId, CachedVerdict>>,
    /// Matrix-backed provenance index, built on first provenance query and
    /// reused until a mutation that can change the induced view graph.
    provenance: RwLock<Option<(u64, Arc<ViewProvenanceIndex>)>>,
}

impl Clone for StoredView {
    fn clone(&self) -> Self {
        StoredView {
            view: Arc::clone(&self.view),
            verdicts: RwLock::new(self.verdicts.read().clone()),
            provenance: RwLock::new(self.provenance.read().clone()),
        }
    }
}

impl StoredView {
    fn new(view: WorkflowView) -> Arc<Self> {
        Arc::new(StoredView {
            view: Arc::new(view),
            verdicts: RwLock::new(HashMap::new()),
            provenance: RwLock::new(None),
        })
    }
}

/// One registered workflow: the spec, its view versions and the mutation
/// epoch keying every cache entry. Cloning is cheap (`Arc` handles plus
/// counters) — it is what `Arc::make_mut` pays per entry when a mutator
/// clones the shard state copy-on-write.
#[derive(Debug, Clone)]
struct Entry {
    spec: Arc<WorkflowSpec>,
    views: Vec<Arc<StoredView>>,
    current: usize,
    epoch: u64,
    /// Change-sequence number: bumped by every committed change of the
    /// entry — mutations *and* corrections (the epoch only counts
    /// mutations). Watch events are tagged with it, so a gap-free event
    /// stream is exactly a contiguous `seq` run.
    seq: u64,
    /// Spec epoch up to which the storage backend has consumed the typed
    /// delta log. Every mutation hands the deltas in
    /// `(logged_epoch, spec.epoch()]` to the write-ahead log *before* the
    /// bounded log could evict them (and errors loudly if it ever did).
    logged_epoch: u64,
}

impl Entry {
    /// The entry's full durable state, as stored in snapshots and
    /// `register` WAL records.
    fn snapshot(&self, id: u64) -> SnapshotEntry {
        SnapshotEntry {
            id,
            epoch: self.epoch,
            current: self.current,
            seq: self.seq,
            spec_lines: spec_to_lines(&self.spec),
            views: self
                .views
                .iter()
                .map(|stored| view_to_lines(&stored.view))
                .collect(),
        }
    }
}

/// Monotone serving counters of one shard. All counters are relaxed atomics:
/// they are statistics, not synchronisation.
#[derive(Debug, Default)]
struct ShardMetrics {
    validate_hits: AtomicU64,
    validate_misses: AtomicU64,
    composite_hits: AtomicU64,
    composite_misses: AtomicU64,
    requests: AtomicU64,
    dropped_watchers: AtomicU64,
    /// Applied mutations by delta class (the maintenance taxonomy), exposed
    /// as `wolves_mutations_total{class=...}` — the observable proof that
    /// removals run decrementally instead of falling back to structural
    /// rebuilds.
    mutations_monotone: AtomicU64,
    mutations_local: AtomicU64,
    mutations_decremental: AtomicU64,
    mutations_structural: AtomicU64,
    mutations_view_edit: AtomicU64,
    /// Per-verb latency histograms; the `stats` wire field `validate_ns`
    /// is derived from the validate histogram's sum (the old lossy summed
    /// counter is gone).
    verbs: VerbTimers,
}

impl ShardMetrics {
    /// Bumps the counter matching one applied mutation's delta-class name.
    fn record_mutation_class(&self, class: &str) {
        let counter = match class {
            "monotone-safe" => &self.mutations_monotone,
            "local-rebuild" => &self.mutations_local,
            "decremental" => &self.mutations_decremental,
            "view-edit" => &self.mutations_view_edit,
            _ => &self.mutations_structural,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// One shard's immutable state, published through a [`SnapshotCell`].
#[derive(Debug, Clone, Default)]
struct ShardState {
    entries: HashMap<u64, Entry>,
}

/// One registered watch subscription, server side.
#[derive(Debug)]
struct Watcher {
    workflow: u64,
    token: u64,
    /// Events with `seq <= base_seq` predate the subscription and are
    /// skipped during fan-out.
    base_seq: u64,
    /// Set before the sender is dropped when the bounded queue overflows,
    /// so the receiver can tell a lag-drop from a clean teardown.
    lagged: Arc<AtomicBool>,
    /// Events currently sitting in the subscriber's queue (incremented on
    /// fan-out, decremented on receive) — the watch-queue depth gauge.
    depth: Arc<AtomicU64>,
    sender: SyncSender<WatchEvent>,
}

#[derive(Debug)]
struct Shard {
    /// The published state; readers `load()` it and never take a lock that
    /// a mutator could hold across real work.
    state: SnapshotCell<ShardState>,
    /// Serialises all write paths (register, mutate, correct, recovery
    /// installs, watch registration) — the WAL append order is the commit
    /// order. Readers never touch it.
    mutator: Mutex<()>,
    /// The watch subscriber registry. Registration additionally holds
    /// `mutator`, so the set of watchers a mutation observes at entry is
    /// exactly the set fan-out will serve at exit — no subscriber can slip
    /// in mid-mutation and miss its first event.
    watchers: Mutex<Vec<Watcher>>,
    /// `Some(reason)` when the shard is degraded (read-only): a WAL append
    /// *and* its rescue snapshot both failed, so the backend cannot commit
    /// new writes. Reads keep serving the last published snapshot;
    /// mutations fail fast with [`ServiceError::Degraded`] until
    /// [`WorkflowStore::heal`] re-opens writes. Checked and set only under
    /// `mutator`, so the degrade/heal transitions serialise with commits.
    degraded: Mutex<Option<String>>,
    metrics: ShardMetrics,
}

impl Shard {
    /// Fails fast with [`ServiceError::Degraded`] when the shard is
    /// read-only. Called under `mutator` at the top of every write path.
    fn writable(&self, index: usize) -> Result<(), ServiceError> {
        match &*self.degraded.lock() {
            Some(reason) => Err(ServiceError::Degraded {
                shard: index,
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    fn has_watcher_for(&self, workflow: u64) -> bool {
        self.watchers
            .lock()
            .iter()
            .any(|watcher| watcher.workflow == workflow)
    }

    /// Fans one committed event out to the workflow's subscribers. Called
    /// under the mutator mutex, strictly after the WAL append and the state
    /// publish. Slow consumers (full queue) are dropped with their `lagged`
    /// flag set; disconnected receivers are cleaned up silently.
    fn fan_out(&self, event: &WatchEvent) {
        let workflow = event.workflow().0;
        let seq = event.seq();
        let mut watchers = self.watchers.lock();
        watchers.retain(|watcher| {
            if watcher.workflow != workflow || seq <= watcher.base_seq {
                return true;
            }
            match watcher.sender.try_send(event.clone()) {
                Ok(()) => {
                    watcher.depth.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(TrySendError::Full(_)) => {
                    watcher.lagged.store(true, Ordering::SeqCst);
                    self.metrics
                        .dropped_watchers
                        .fetch_add(1, Ordering::Relaxed);
                    false
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
    }
}

/// Which cached composite verdicts a mutation invalidates.
enum Affected {
    /// Every cached verdict (structural deltas, task add/remove).
    All,
    /// Only the listed composites; everything else survives re-tagged.
    Composites(BTreeSet<CompositeTaskId>),
}

impl Affected {
    fn contains(&self, composite: CompositeTaskId) -> bool {
        match self {
            Affected::All => true,
            Affected::Composites(set) => set.contains(&composite),
        }
    }
}

/// A live watch subscription handed out by [`WorkflowStore::watch`].
///
/// Events arrive on a bounded queue; when the subscriber cannot keep up the
/// store drops it (setting a lag marker) rather than blocking mutators or
/// other subscribers. Dropping the subscription (or calling
/// [`WorkflowStore::unwatch`]) tears the registration down cleanly — the
/// next fan-out to the dead queue removes any leftover registry entry.
#[derive(Debug)]
pub struct WatchSubscription {
    workflow: WorkflowId,
    shard_index: usize,
    token: u64,
    seq: u64,
    epoch: u64,
    payload: Option<String>,
    lagged: Arc<AtomicBool>,
    depth: Arc<AtomicU64>,
    receiver: Receiver<WatchEvent>,
}

impl WatchSubscription {
    /// The watched workflow.
    #[must_use]
    pub fn workflow(&self) -> WorkflowId {
        self.workflow
    }

    /// The workflow's change-sequence number at subscription time: the
    /// first received event carries `seq() + 1`, and a gap-free consumer
    /// checks contiguity from here.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The workflow's mutation epoch at subscription time.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// In [`WatchMode::Resync`], the workflow's full textfmt payload,
    /// consistent with [`WatchSubscription::seq`].
    #[must_use]
    pub fn payload(&self) -> Option<&str> {
        self.payload.as_deref()
    }

    /// Waits up to `timeout` for the next event. Returns `Ok(None)` on
    /// timeout (the subscription is still live).
    ///
    /// # Errors
    /// [`ServiceError::Lagged`] once a lag-dropped subscription's buffered
    /// events are drained — the gap-free tail is gone, resync to continue;
    /// [`ServiceError::Protocol`] when the subscription was closed for any
    /// other reason (e.g. an explicit [`WorkflowStore::unwatch`]).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<WatchEvent>, ServiceError> {
        match self.receiver.recv_timeout(timeout) {
            Ok(event) => {
                // keep the queue-depth gauge honest; saturate rather than
                // wrap if a drain ever races a teardown
                let _ = self
                    .depth
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                        depth.checked_sub(1)
                    });
                Ok(Some(event))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if self.lagged.load(Ordering::SeqCst) {
                    Err(ServiceError::Lagged)
                } else {
                    Err(ServiceError::Protocol(
                        "watch subscription closed".to_owned(),
                    ))
                }
            }
        }
    }
}

/// The sharded workflow store described in the module docs.
#[derive(Debug)]
pub struct WorkflowStore {
    shards: Vec<Shard>,
    next_id: AtomicU64,
    next_watch_token: AtomicU64,
    registry: EstimationRegistry,
    backend: Arc<dyn StorageBackend>,
    telemetry: Telemetry,
    server_gauges: Mutex<Option<Arc<ServerGauges>>>,
}

impl WorkflowStore {
    /// Creates a purely in-memory store with `shard_count` shards (at least
    /// one) — a [`MemoryBackend`] behind the scenes, with today's zero-cost
    /// behaviour.
    #[must_use]
    pub fn new(shard_count: usize) -> Self {
        Self::with_backend(Arc::new(MemoryBackend::new(shard_count)))
    }

    fn with_backend(backend: Arc<dyn StorageBackend>) -> Self {
        let shards = (0..backend.shard_count())
            .map(|_| Shard {
                state: SnapshotCell::new(ShardState::default()),
                mutator: Mutex::new(()),
                watchers: Mutex::new(Vec::new()),
                degraded: Mutex::new(None),
                metrics: ShardMetrics::default(),
            })
            .collect();
        WorkflowStore {
            shards,
            next_id: AtomicU64::new(0),
            next_watch_token: AtomicU64::new(0),
            registry: EstimationRegistry::new(),
            backend,
            telemetry: Telemetry::new(),
            server_gauges: Mutex::new(None),
        }
    }

    /// Attaches the serving layer's connection/wakeup gauges so the
    /// `metrics` verb can expose them alongside the store's own series. The
    /// server calls this when it starts on the store; the latest attachment
    /// wins.
    pub fn attach_server_gauges(&self, gauges: Arc<ServerGauges>) {
        *self.server_gauges.lock() = Some(gauges);
    }

    /// Opens a store on a storage backend, recovering whatever the backend
    /// journals: the newest snapshot of each shard is installed, then the
    /// write-ahead log is replayed **through the live request paths**
    /// (`WorkflowSpec::apply` for mutations, version append for
    /// corrections), so the recovered store serves bit-identical answers —
    /// same epochs, same task/composite-id assignment, same cache keying —
    /// as the store that crashed. Replayed epochs and spec deltas are
    /// cross-checked against the logged ones; a divergence aborts recovery.
    ///
    /// After a successful replay every shard is snapshotted once, which
    /// compacts the recovered log away and bounds the next start-up.
    ///
    /// # Errors
    /// Reports journal corruption, replay divergence and I/O failures.
    pub fn open(backend: Arc<dyn StorageBackend>) -> Result<(Self, RecoveryReport), ServiceError> {
        let store = Self::with_backend(Arc::clone(&backend));
        let replay_start = Instant::now();
        let journal = backend.take_journal()?;
        let mut report = RecoveryReport {
            shards: store.shards.len(),
            ..RecoveryReport::default()
        };
        for (index, shard) in journal.into_iter().enumerate() {
            store.replay_shard(index, shard, &mut report)?;
        }
        store
            .telemetry
            .set_recovery_replay_ns(duration_ns(replay_start.elapsed()));
        report.workflows = store
            .shards
            .iter()
            .map(|shard| shard.state.load().entries.len())
            .sum();
        if report.snapshot_entries + report.replayed_records > 0 {
            // compact: the replayed journal becomes the new snapshot base
            store.snapshot_all()?;
        }
        Ok((store, report))
    }

    /// Replays one shard's journal in append order.
    fn replay_shard(
        &self,
        index: usize,
        journal: ShardJournal,
        report: &mut RecoveryReport,
    ) -> Result<(), ServiceError> {
        let mut note_entries = 0usize;
        let mut note_records = 0usize;
        if journal.torn_bytes > 0 {
            report.torn_tails += 1;
            report.notes.push(format!(
                "shard {index}: discarded {} byte(s) of torn WAL tail",
                journal.torn_bytes
            ));
        }
        for entry in journal.entries {
            self.install_entry(entry)?;
            note_entries += 1;
        }
        for record in journal.records {
            note_records += 1;
            match record {
                WalRecord::Register { id, entry } => {
                    if entry.id != id {
                        return Err(ServiceError::Recovery(format!(
                            "register record for workflow {id} carries entry {}",
                            entry.id
                        )));
                    }
                    self.install_entry(entry)?;
                }
                WalRecord::Mutate {
                    id,
                    epoch,
                    op,
                    deltas,
                } => {
                    let (mutated, replayed_deltas, _) =
                        self.mutate_inner(WorkflowId(id), op, false, None, false)?;
                    if mutated.epoch != epoch || replayed_deltas != deltas {
                        return Err(ServiceError::Recovery(format!(
                            "replay diverged on workflow {id}: logged epoch {epoch}, \
                             replayed epoch {}",
                            mutated.epoch
                        )));
                    }
                }
                WalRecord::Correct {
                    id,
                    version,
                    view_lines,
                } => self.install_correction(id, version, &view_lines)?,
            }
        }
        report.snapshot_entries += note_entries;
        report.replayed_records += note_records;
        if note_entries + note_records > 0 {
            report.notes.push(format!(
                "shard {index}: {note_entries} snapshot entr(ies), \
                 {note_records} WAL record(s)"
            ));
        }
        Ok(())
    }

    /// Installs one recovered workflow entry (from a snapshot or a replayed
    /// `register` record).
    fn install_entry(&self, snapshot: SnapshotEntry) -> Result<(), ServiceError> {
        let recover = |e: wolves_workflow::WorkflowError| ServiceError::Recovery(e.to_string());
        let spec = spec_from_lines(&snapshot.spec_lines).map_err(recover)?;
        let mut views = Vec::with_capacity(snapshot.views.len());
        for lines in &snapshot.views {
            let view = view_from_lines(lines).map_err(recover)?;
            view.validate_against(&spec).map_err(recover)?;
            views.push(StoredView::new(view));
        }
        if !views.is_empty() && snapshot.current >= views.len() {
            return Err(ServiceError::Recovery(format!(
                "workflow {}: current version {} out of range ({} view(s))",
                snapshot.id,
                snapshot.current,
                views.len()
            )));
        }
        let _ = spec.reachability();
        let entry = Entry {
            logged_epoch: spec.epoch(),
            spec: Arc::new(spec),
            views,
            current: snapshot.current,
            epoch: snapshot.epoch,
            seq: snapshot.seq,
        };
        let id = WorkflowId(snapshot.id);
        let shard = self.shard_of(id);
        let _guard = shard.mutator.lock();
        let mut next = shard.state.load();
        if Arc::make_mut(&mut next)
            .entries
            .insert(snapshot.id, entry)
            .is_some()
        {
            // the clone is dropped unpublished: the duplicate never lands
            return Err(ServiceError::Recovery(format!(
                "workflow {} recovered twice",
                snapshot.id
            )));
        }
        shard.state.publish(next);
        self.next_id.fetch_max(snapshot.id, Ordering::Relaxed);
        Ok(())
    }

    /// Replays a logged correction: appends the recorded view version and
    /// makes it current. Also the replica-side path for `corrected` watch
    /// events (see [`WorkflowStore::apply_watch_event`]), so it bumps the
    /// change-sequence number and fans out to any local subscribers.
    fn install_correction(
        &self,
        id: u64,
        version: usize,
        view_lines: &[String],
    ) -> Result<(), ServiceError> {
        let recover = |e: wolves_workflow::WorkflowError| ServiceError::Recovery(e.to_string());
        let view = view_from_lines(view_lines).map_err(recover)?;
        let shard = self.shard_of(WorkflowId(id));
        let _guard = shard.mutator.lock();
        let mut next = shard.state.load();
        let state = Arc::make_mut(&mut next);
        let entry = state
            .entries
            .get_mut(&id)
            .ok_or(ServiceError::UnknownWorkflow(WorkflowId(id)))?;
        view.validate_against(&entry.spec).map_err(recover)?;
        if version != entry.views.len() {
            return Err(ServiceError::Recovery(format!(
                "correction replay diverged on workflow {id}: logged version {version}, \
                 next version {}",
                entry.views.len()
            )));
        }
        entry.views.push(StoredView::new(view));
        entry.current = version;
        entry.seq += 1;
        let seq = entry.seq;
        let event = shard.has_watcher_for(id).then(|| WatchEvent::Corrected {
            workflow: WorkflowId(id),
            seq,
            version,
            view_lines: view_lines.to_vec(),
        });
        shard.state.publish(next);
        if let Some(event) = event {
            shard.fan_out(&event);
        }
        Ok(())
    }

    /// The storage backend behind the store.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The estimation registry fed by correction requests.
    #[must_use]
    pub fn registry(&self) -> &EstimationRegistry {
        &self.registry
    }

    fn shard_index_of(&self, id: WorkflowId) -> usize {
        let mut hasher = DefaultHasher::new();
        id.0.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn shard_of(&self, id: WorkflowId) -> &Shard {
        &self.shards[self.shard_index_of(id)]
    }

    /// Registers a workflow and optional view, returning the assigned id.
    ///
    /// The spec's reachability matrix is primed here, outside any lock, so
    /// every later request shares the already-built matrix.
    ///
    /// # Panics
    /// Panics if a durable backend fails to persist the registration; use
    /// [`WorkflowStore::try_register`] to handle persistence failures.
    pub fn register(&self, spec: WorkflowSpec, view: Option<WorkflowView>) -> WorkflowId {
        self.try_register(spec, view)
            .expect("workflow registration failed to persist")
    }

    /// Registers a workflow and optional view, returning the assigned id.
    ///
    /// # Errors
    /// Reports views that do not partition the spec's tasks and, on durable
    /// backends, serialisation and persistence failures (the registration
    /// is rolled back, so memory and disk stay consistent).
    pub fn try_register(
        &self,
        spec: WorkflowSpec,
        view: Option<WorkflowView>,
    ) -> Result<WorkflowId, ServiceError> {
        let start = Instant::now();
        let persist = |e: wolves_workflow::WorkflowError| ServiceError::Persistence(e.to_string());
        if self.backend.durable() {
            // refuse names the line format cannot carry before anything is
            // allocated or written
            check_spec_serialisable(&spec).map_err(persist)?;
            if let Some(view) = &view {
                check_view_serialisable(view).map_err(persist)?;
            }
        }
        let compute_start = Instant::now();
        let _ = spec.reachability();
        let compute_ns = duration_ns(compute_start.elapsed());
        let id = WorkflowId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let entry = Entry {
            logged_epoch: spec.epoch(),
            spec: Arc::new(spec),
            views: view.map(StoredView::new).into_iter().collect(),
            current: 0,
            epoch: 0,
            seq: 0,
        };
        // the in-memory backend keeps its zero-cost contract: no snapshot
        // serialisation, no record building
        let record = self.backend.durable().then(|| WalRecord::Register {
            id: id.0,
            entry: entry.snapshot(id.0),
        });
        let index = self.shard_index_of(id);
        let shard = &self.shards[index];
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let guard = shard.mutator.lock();
        shard.writable(index)?;
        let mut next = shard.state.load();
        Arc::make_mut(&mut next).entries.insert(id.0, entry);
        let mut wants_snapshot = false;
        let mut append_ns = 0u64;
        let mut fsync_ns = 0u64;
        let mut ticket = 0u64;
        if let Some(record) = record {
            let append_start = Instant::now();
            match self.backend.append(index, &record) {
                Ok(outcome) => {
                    wants_snapshot = outcome.wants_snapshot;
                    fsync_ns = outcome.fsync_ns;
                    ticket = outcome.ticket;
                    append_ns = duration_ns(append_start.elapsed()).saturating_sub(fsync_ns);
                }
                // self-heal a failed append with a full snapshot of the
                // *next* state (rotation supersedes the damaged segment);
                // a double failure rolls back by dropping the unpublished
                // clone — neither memory nor disk saw the registration —
                // and degrades the shard to read-only
                Err(e) => {
                    if let Err(rescue) = self.snapshot_shard(index, &next.entries) {
                        return Err(self.degrade(index, shard, &e, &rescue));
                    }
                }
            }
        }
        let publish_start = Instant::now();
        shard.state.publish(Arc::clone(&next));
        let publish_ns = duration_ns(publish_start.elapsed());
        if wants_snapshot {
            self.snapshot_shard(index, &next.entries)?;
        }
        // group commit: wait for durability with the mutator mutex released
        // so concurrent writers can publish into the same fsync
        drop(guard);
        if ticket > 0 {
            fsync_ns = fsync_ns.max(self.backend.wait_durable(index, ticket)?);
        }
        let spans = [
            (Stage::Compute, compute_ns),
            (Stage::WalAppend, append_ns),
            (Stage::Fsync, fsync_ns),
            (Stage::SnapshotPublish, publish_ns),
        ];
        let total_ns = duration_ns(start.elapsed());
        shard.metrics.verbs.record(Verb::Register, total_ns);
        self.telemetry.record_spans(&spans);
        self.telemetry
            .offer_slow(Verb::Register, Some(id.0), total_ns, &spans);
        Ok(id)
    }

    /// Registers a workflow from a native text-format payload.
    ///
    /// # Errors
    /// Reports payloads that do not parse as the text format, and
    /// persistence failures on durable backends.
    pub fn register_text(&self, payload: &str) -> Result<WorkflowId, ServiceError> {
        let parse_start = Instant::now();
        let imported = read_text_format(payload)?;
        self.telemetry
            .stage(Stage::Parse, duration_ns(parse_start.elapsed()));
        self.try_register(imported.spec, imported.view)
    }

    /// Writes a snapshot of one shard through the backend (the caller holds
    /// the shard's mutator mutex, so the dump is a consistent cut).
    fn snapshot_shard(
        &self,
        index: usize,
        entries: &HashMap<u64, Entry>,
    ) -> Result<(), ServiceError> {
        let mut ids: Vec<u64> = entries.keys().copied().collect();
        ids.sort_unstable();
        let dump: Vec<SnapshotEntry> = ids.iter().map(|id| entries[id].snapshot(*id)).collect();
        self.backend.write_snapshot(index, &dump)
    }

    /// Marks one shard degraded (read-only) after a double storage failure
    /// — a WAL append *and* its rescue snapshot both failed — and returns
    /// the [`ServiceError::Degraded`] the failed write reports. The caller
    /// holds the shard's mutator mutex; nothing was published, so readers
    /// keep serving the last committed snapshot.
    fn degrade(
        &self,
        index: usize,
        shard: &Shard,
        append: &ServiceError,
        rescue: &ServiceError,
    ) -> ServiceError {
        let reason = format!("append failed: {append}; rescue snapshot failed: {rescue}");
        *shard.degraded.lock() = Some(reason.clone());
        let error = ServiceError::Degraded {
            shard: index,
            reason,
        };
        self.record_error(&error);
        error
    }

    /// Indices of the shards currently degraded (read-only).
    #[must_use]
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, shard)| shard.degraded.lock().is_some())
            .map(|(index, _)| index)
            .collect()
    }

    /// Attempts to re-open writes on every degraded shard: under the
    /// shard's mutator mutex the backend is retried with a full snapshot
    /// of the shard's current in-memory state (exactly the acked state —
    /// nothing unacked was ever published), whose rotation supersedes any
    /// damaged log segment. A shard whose snapshot succeeds clears its
    /// degraded flag and accepts mutations again — no restart, no data
    /// loss. Returns `(healed, still_degraded)`.
    pub fn heal(&self) -> (usize, usize) {
        let mut healed = 0usize;
        let mut still_degraded = 0usize;
        for (index, shard) in self.shards.iter().enumerate() {
            let _guard = shard.mutator.lock();
            if shard.degraded.lock().is_none() {
                continue;
            }
            // best-effort flush of anything the backend buffered before
            // the failure; the snapshot below is the actual heal
            let _ = self.backend.sync();
            let state = shard.state.load();
            if self.snapshot_shard(index, &state.entries).is_ok() {
                *shard.degraded.lock() = None;
                healed += 1;
            } else {
                still_degraded += 1;
            }
        }
        (healed, still_degraded)
    }

    /// Counts one error response under its typed wire kind — the
    /// `wolves_errors_total{kind}` series.
    pub fn record_error(&self, error: &ServiceError) {
        self.telemetry.errors().record(error.wire_kind());
    }

    /// Snapshots every shard through the backend, truncating each shard's
    /// write-ahead log (compaction). This is what the `snapshot` protocol
    /// verb runs; on the in-memory backend it is a no-op. Returns the
    /// number of shards snapshotted.
    ///
    /// # Errors
    /// Reports backend I/O failures.
    pub fn snapshot_all(&self) -> Result<usize, ServiceError> {
        for (index, shard) in self.shards.iter().enumerate() {
            // hold the mutator mutex for a consistent cut; readers are
            // unaffected — they keep loading the published snapshot
            let _guard = shard.mutator.lock();
            let state = shard.state.load();
            self.snapshot_shard(index, &state.entries)?;
        }
        Ok(self.shards.len())
    }

    /// Exports a workflow's current state (spec + current view) in the
    /// registrable native text format — what a client needs to resync after
    /// server-side mutations and corrections.
    ///
    /// # Errors
    /// Reports unknown workflows.
    pub fn export(&self, id: WorkflowId) -> Result<String, ServiceError> {
        let start = Instant::now();
        let shard = self.shard_of(id);
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let state = shard.state.load();
        let entry = state
            .entries
            .get(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        let view = entry.views.get(entry.current).map(|stored| &*stored.view);
        let payload = write_text_format(&entry.spec, view);
        shard
            .metrics
            .verbs
            .record(Verb::Export, duration_ns(start.elapsed()));
        Ok(payload)
    }

    /// Snapshot of a workflow's spec, a view version (current when `version`
    /// is `None`) and the mutation epoch, off the shard's published state.
    /// The three are mutually consistent: mutators build the next state
    /// copy-on-write and publish it atomically — a reader never observes a
    /// half-applied mutation, and never waits behind one.
    fn snapshot(
        &self,
        id: WorkflowId,
        version: Option<usize>,
    ) -> Result<(Arc<WorkflowSpec>, Arc<StoredView>, usize, u64), ServiceError> {
        let shard = self.shard_of(id);
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let state = shard.state.load();
        let entry = state
            .entries
            .get(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.views.is_empty() {
            return Err(ServiceError::NoView(id));
        }
        let index = version.unwrap_or(entry.current);
        let stored = entry
            .views
            .get(index)
            .ok_or(ServiceError::UnknownView(id, index))?;
        Ok((
            Arc::clone(&entry.spec),
            Arc::clone(stored),
            index,
            entry.epoch,
        ))
    }

    /// Validates a view version composite by composite, serving every
    /// epoch-fresh cached verdict and computing only the rest. The response
    /// counts as a cache hit when *no* composite had to be computed.
    ///
    /// # Errors
    /// Reports unknown workflows and view versions.
    pub fn validate(
        &self,
        id: WorkflowId,
        version: Option<usize>,
    ) -> Result<Verdict, ServiceError> {
        let start = Instant::now();
        let (spec, stored, index, epoch) = self.snapshot(id, version)?;
        let view = Arc::clone(&stored.view);
        let mut computed = 0u64;
        let mut served = 0u64;
        let mut compute_ns = 0u64;
        let mut unsound = Vec::new();
        for (composite_id, composite) in view.composites() {
            let cell = {
                let map = stored.verdicts.read();
                map.get(&composite_id)
                    .filter(|cached| cached.epoch == epoch)
                    .map(|cached| Arc::clone(&cached.cell))
            };
            let cell = cell.unwrap_or_else(|| {
                let mut map = stored.verdicts.write();
                match map.get(&composite_id) {
                    Some(cached) if cached.epoch == epoch => Arc::clone(&cached.cell),
                    // the entry is fresher than our snapshot (a mutation won
                    // the race): compute one-off without disturbing the cache
                    Some(cached) if cached.epoch > epoch => Arc::new(OnceLock::new()),
                    _ => {
                        let cell = Arc::new(OnceLock::new());
                        map.insert(
                            composite_id,
                            CachedVerdict {
                                epoch,
                                cell: Arc::clone(&cell),
                            },
                        );
                        cell
                    }
                }
            });
            let mut ran = false;
            let summary = cell.get_or_init(|| {
                ran = true;
                let compute_start = Instant::now();
                let sound = soundness_verdict(&spec, composite.members()).is_sound();
                compute_ns += duration_ns(compute_start.elapsed());
                CompositeSummary {
                    sound,
                    name: composite.name.clone(),
                }
            });
            if ran {
                computed += 1;
            } else {
                served += 1;
            }
            if !summary.sound {
                unsound.push(summary.name.clone());
            }
        }
        let cached = computed == 0;
        let metrics = &self.shard_of(id).metrics;
        if cached {
            metrics.validate_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            metrics.validate_misses.fetch_add(1, Ordering::Relaxed);
        }
        metrics.composite_hits.fetch_add(served, Ordering::Relaxed);
        metrics
            .composite_misses
            .fetch_add(computed, Ordering::Relaxed);
        let total_ns = duration_ns(start.elapsed());
        // everything that is not verdict computation is cache traffic:
        // snapshot load, per-composite cell lookups, re-tag checks
        let spans = [
            (Stage::CacheLookup, total_ns.saturating_sub(compute_ns)),
            (Stage::Compute, compute_ns),
        ];
        metrics.verbs.record(Verb::Validate, total_ns);
        self.telemetry.record_spans(&spans);
        self.telemetry
            .offer_slow(Verb::Validate, Some(id.0), total_ns, &spans);
        Ok(Verdict {
            sound: unsound.is_empty(),
            version: index,
            cached,
            epoch,
            unsound,
        })
    }

    /// Applies one mutation to a registered workflow under the shard's
    /// mutator mutex, with composite-granular cache invalidation: only the
    /// cached verdicts whose composites the edit could have changed are
    /// dropped; the rest are re-tagged to the new epoch and keep serving
    /// hits. The next shard state is built copy-on-write and published
    /// atomically, so concurrent readers stay on a consistent pre-mutation
    /// snapshot and never block.
    ///
    /// On a durable backend the edit is appended to the shard's write-ahead
    /// log (op + consumed spec deltas) *before* the new state is published
    /// and before any watch event is fanned out, so the log order is the
    /// store order and no subscriber ever holds an event the log misses.
    ///
    /// # Errors
    /// Reports unknown workflows, tasks and composites, edits the model
    /// layer rejects (duplicate names, missing dependencies, non-partition
    /// splits), and persistence failures.
    pub fn mutate(&self, id: WorkflowId, op: MutateOp) -> Result<Mutated, ServiceError> {
        self.mutate_cas(id, op, None)
    }

    /// [`WorkflowStore::mutate`] with an optional compare-and-set guard:
    /// when `expect` is `Some(epoch)`, the edit applies only if the
    /// workflow's mutation epoch still equals `epoch` — otherwise nothing
    /// changes and [`ServiceError::EpochConflict`] reports the actual
    /// epoch. This is what makes retried mutations idempotent: a client
    /// that resends a mutation whose ack was lost sees a conflict (the
    /// first send already bumped the epoch) instead of applying twice.
    ///
    /// # Errors
    /// Everything [`WorkflowStore::mutate`] reports, plus
    /// [`ServiceError::EpochConflict`] on a stale `expect`.
    pub fn mutate_cas(
        &self,
        id: WorkflowId,
        op: MutateOp,
        expect: Option<u64>,
    ) -> Result<Mutated, ServiceError> {
        self.mutate_inner(id, op, true, expect, false)
            .map(|(mutated, _, _)| mutated)
    }

    /// [`WorkflowStore::mutate_cas`] with the durability wait *deferred*:
    /// the mutation is applied, logged and published, but this call returns
    /// without waiting for its WAL record to be fsynced. The returned
    /// ticket MUST be folded into a [`DurabilityBarrier`] and awaited via
    /// [`WorkflowStore::await_durability`] before the outcome is
    /// acknowledged to any client. This is how a pipelined batch of
    /// mutations shares one group-commit wait (and, in strict-fsync mode,
    /// typically one fsync) instead of paying one per request.
    ///
    /// # Errors
    /// Everything [`WorkflowStore::mutate_cas`] reports, except durability
    /// errors — those surface from `await_durability`.
    pub fn mutate_deferred(
        &self,
        id: WorkflowId,
        op: MutateOp,
        expect: Option<u64>,
    ) -> Result<(Mutated, DurabilityTicket), ServiceError> {
        self.mutate_inner(id, op, true, expect, true)
            .map(|(mutated, _, ticket)| (mutated, ticket))
    }

    /// Blocks until every obligation folded into `barrier` is on stable
    /// storage (per the backend's fsync policy). Returns the observed wait
    /// in nanoseconds. A no-op for empty barriers and non-strict policies.
    ///
    /// # Errors
    /// Propagates the backend's fsync failure: the covered mutations are
    /// published in memory but not yet power-loss durable.
    pub fn await_durability(&self, barrier: &DurabilityBarrier) -> Result<u64, ServiceError> {
        let mut fsync_ns = 0u64;
        for &(shard, ticket) in &barrier.pending {
            fsync_ns = fsync_ns.max(self.backend.wait_durable(shard, ticket)?);
        }
        Ok(fsync_ns)
    }

    /// [`WorkflowStore::mutate`] with recording control: recovery replays
    /// logged ops through this path with `record` off (re-appending them
    /// would duplicate the log). Returns the consumed spec deltas alongside
    /// the outcome so replay can cross-check them against the record.
    fn mutate_inner(
        &self,
        id: WorkflowId,
        op: MutateOp,
        record: bool,
        expect: Option<u64>,
        defer: bool,
    ) -> Result<(Mutated, Vec<SpecDelta>, DurabilityTicket), ServiceError> {
        let start = Instant::now();
        let durable = self.backend.durable();
        if durable && record {
            // refuse names the single-line WAL/wire grammar cannot carry
            // before anything is applied (replayed ops were checked when
            // they were first logged)
            check_op_serialisable(&op)?;
        }
        let index = self.shard_index_of(id);
        let shard = &self.shards[index];
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // serialise mutators; readers keep loading the published snapshot.
        // Watch registration also takes this mutex, so the watcher set
        // observed here is exactly the set the fan-out below serves.
        let mutator = shard.mutator.lock();
        shard.writable(index)?;
        let wants_event = record && shard.has_watcher_for(id.0);
        // only durable recording and watch fan-out need the op after the
        // apply-match consumes it; the bare in-memory path skips the clone
        let logged_op = ((durable && record) || wants_event).then(|| op.clone());
        // copy-on-write: build the next shard state off to the side; every
        // error return below drops it unpublished, leaving readers on the
        // untouched current snapshot
        let mut next = shard.state.load();
        let entry = Arc::make_mut(&mut next)
            .entries
            .get_mut(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.views.is_empty() {
            return Err(ServiceError::NoView(id));
        }
        let old_epoch = entry.epoch;
        if let Some(expected) = expect {
            // the CAS guard: checked under the mutator mutex, before any
            // state is touched, so a stale expectation changes nothing
            if expected != old_epoch {
                return Err(ServiceError::EpochConflict {
                    expected,
                    actual: old_epoch,
                });
            }
        }
        let new_epoch = old_epoch + 1;

        let mutation = |e: wolves_workflow::WorkflowError| ServiceError::Mutation(e.to_string());
        let resolve_task = |spec: &WorkflowSpec, name: &str| -> Result<TaskId, ServiceError> {
            spec.task_by_name(name)
                .ok_or_else(|| ServiceError::UnknownTask(name.to_owned()))
        };

        // `truncate`: task-set edits rebase the workflow — older view
        // versions would no longer partition the tasks, so only the updated
        // current view survives.
        let compute_start = Instant::now();
        let (class, affected, provenance_survives, truncate) = match op {
            MutateOp::AddTask { name } => {
                let spec = Arc::make_mut(&mut entry.spec);
                let report = spec
                    .apply(SpecMutation::AddTask { name: name.clone() })
                    .map_err(mutation)?;
                let task = report.task.expect("AddTask reports the created task");
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                let composite = view.add_composite(name, vec![task]).map_err(mutation)?;
                (
                    report.class.name(),
                    Affected::Composites([composite].into_iter().collect()),
                    false,
                    true,
                )
            }
            MutateOp::RemoveTask { name } => {
                let task = resolve_task(&entry.spec, &name)?;
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                view.remove_member(task).map_err(mutation)?;
                let spec = Arc::make_mut(&mut entry.spec);
                let report = spec
                    .apply(SpecMutation::RemoveTask { task })
                    .map_err(mutation)?;
                (report.class.name(), Affected::All, false, true)
            }
            MutateOp::AddEdge { from, to } => {
                let from = resolve_task(&entry.spec, &from)?;
                let to = resolve_task(&entry.spec, &to)?;
                let report = Arc::make_mut(&mut entry.spec)
                    .apply(SpecMutation::AddDependency { from, to })
                    .map_err(mutation)?;
                let (affected, internal) = edge_affected_composites(entry, from, to, &report.dirty);
                (report.class.name(), affected, internal, false)
            }
            MutateOp::RemoveEdge { from, to } => {
                let from = resolve_task(&entry.spec, &from)?;
                let to = resolve_task(&entry.spec, &to)?;
                let report = Arc::make_mut(&mut entry.spec)
                    .apply(SpecMutation::RemoveDependency { from, to })
                    .map_err(mutation)?;
                // the decremental maintenance reports exactly which
                // reachability rows shrank, so survivor composites keep
                // their cached verdicts just like on the insert path; an
                // intra-composite edge additionally cannot change the
                // induced view graph, so the provenance index survives
                let (affected, internal) = edge_affected_composites(entry, from, to, &report.dirty);
                (report.class.name(), affected, internal, false)
            }
            MutateOp::Split { composite, parts } => {
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                let target = composite_by_name(view, &composite)?;
                let spec = &entry.spec;
                let part_ids: Vec<Vec<TaskId>> = parts
                    .iter()
                    .map(|part| {
                        part.iter()
                            .map(|name| resolve_task(spec, name))
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<_, _>>()?;
                view.split_composite(target, part_ids).map_err(mutation)?;
                (
                    "view-edit",
                    Affected::Composites([target].into_iter().collect()),
                    false,
                    false,
                )
            }
            MutateOp::Merge { name, composites } => {
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                let ids: Vec<CompositeTaskId> = composites
                    .iter()
                    .map(|c| composite_by_name(view, c))
                    .collect::<Result<_, _>>()?;
                view.merge_composites(&ids, name).map_err(mutation)?;
                (
                    "view-edit",
                    Affected::Composites(ids.into_iter().collect()),
                    false,
                    false,
                )
            }
        };

        let compute_ns = duration_ns(compute_start.elapsed());
        shard.metrics.record_mutation_class(class);
        // the retag-or-drop pass over the cached verdicts is cache work,
        // not model computation
        let lookup_start = Instant::now();
        let mutated = finish_mutation(
            entry,
            class,
            &affected,
            provenance_survives,
            truncate,
            new_epoch,
        );
        let lookup_ns = duration_ns(lookup_start.elapsed());
        // every change (mutations here, corrections below) bumps the
        // per-entry sequence number; watch subscribers use its contiguity
        // to prove the event stream is gap-free
        entry.seq += 1;
        let seq = entry.seq;
        // hand the new spec deltas to the write-ahead log and the watch
        // fan-out before the bounded delta log could evict them (the bare
        // in-memory backend keeps its zero-cost contract: no delta
        // collection, no record building)
        let deltas = if durable || wants_event {
            consume_deltas(entry)?
        } else {
            Vec::new()
        };
        entry.logged_epoch = entry.spec.epoch();
        let mut wants_snapshot = false;
        let mut append_ns = 0u64;
        let mut fsync_ns = 0u64;
        let mut ticket = 0u64;
        if durable && record {
            let wal_record = WalRecord::Mutate {
                id: id.0,
                epoch: mutated.epoch,
                op: logged_op.clone().expect("cloned for the recording path"),
                deltas: deltas.clone(),
            };
            let append_start = Instant::now();
            match self.backend.append(index, &wal_record) {
                Ok(outcome) => {
                    wants_snapshot = outcome.wants_snapshot;
                    fsync_ns = outcome.fsync_ns;
                    ticket = outcome.ticket;
                    append_ns = duration_ns(append_start.elapsed()).saturating_sub(fsync_ns);
                }
                // self-heal a failed append with a full snapshot of the
                // *next* state (which rotates the log past the gap); if
                // that fails too, nothing has been published — memory and
                // durable state both still hold the pre-mutation snapshot
                // — and the shard degrades to read-only
                Err(e) => {
                    if let Err(rescue) = self.snapshot_shard(index, &next.entries) {
                        return Err(self.degrade(index, shard, &e, &rescue));
                    }
                }
            }
        }
        // the commit point: readers switch to the mutated state here
        let publish_start = Instant::now();
        shard.state.publish(Arc::clone(&next));
        let publish_ns = duration_ns(publish_start.elapsed());
        let mut fanout_ns = 0u64;
        if wants_event {
            // after the WAL append (no subscriber ever holds an event the
            // log misses) and after publish (an event's reader-visible
            // state is never behind the event)
            let fanout_start = Instant::now();
            shard.fan_out(&WatchEvent::Mutated {
                workflow: id,
                seq,
                op: logged_op.expect("cloned for the fan-out path"),
                outcome: mutated.clone(),
                deltas: deltas.clone(),
            });
            fanout_ns = duration_ns(fanout_start.elapsed());
            shard.metrics.verbs.record(Verb::WatchFanout, fanout_ns);
        }
        if wants_snapshot {
            // a snapshot failure here leaves memory and WAL committed; the
            // caller learns durable compaction is behind
            self.snapshot_shard(index, &next.entries)?;
        }
        // group commit: wait for durability with the mutator mutex released
        // so concurrent writers can publish into the same fsync. A deferred
        // caller skips the wait and carries the obligation out as a ticket
        // (one barrier per pipelined batch instead of one wait per record).
        drop(mutator);
        let mut pending = DurabilityTicket::default();
        if ticket > 0 {
            if defer {
                pending = DurabilityTicket {
                    shard: index,
                    ticket,
                };
            } else {
                fsync_ns = fsync_ns.max(self.backend.wait_durable(index, ticket)?);
            }
        }
        let spans = [
            (Stage::CacheLookup, lookup_ns),
            (Stage::Compute, compute_ns),
            (Stage::WalAppend, append_ns),
            (Stage::Fsync, fsync_ns),
            (Stage::SnapshotPublish, publish_ns),
            (Stage::WatchFanout, fanout_ns),
        ];
        let total_ns = duration_ns(start.elapsed());
        shard.metrics.verbs.record(Verb::Mutate, total_ns);
        self.telemetry.record_spans(&spans);
        self.telemetry
            .offer_slow(Verb::Mutate, Some(id.0), total_ns, &spans);
        Ok((mutated, deltas, pending))
    }

    /// Corrects the current view with `strategy`. When the view was unsound,
    /// the corrected view is appended as a new version and becomes current;
    /// observed per-composite timings are recorded in the estimation
    /// registry. The expensive correction runs outside the shard lock.
    ///
    /// # Errors
    /// Reports unknown workflows and corrector failures.
    pub fn correct(&self, id: WorkflowId, strategy: Strategy) -> Result<Corrected, ServiceError> {
        let start = Instant::now();
        let record_correct = |spans: &[(Stage, u64)]| {
            let total_ns = duration_ns(start.elapsed());
            self.shard_of(id)
                .metrics
                .verbs
                .record(Verb::Correct, total_ns);
            self.telemetry.record_spans(spans);
            self.telemetry
                .offer_slow(Verb::Correct, Some(id.0), total_ns, spans);
        };
        let (spec, stored, index, epoch) = self.snapshot(id, None)?;
        let corrector = strategy.corrector();
        let compute_start = Instant::now();
        let (corrected, report) = correct_view(&spec, &stored.view, corrector.as_ref())?;
        let compute_ns = duration_ns(compute_start.elapsed());
        for correction in &report.corrections {
            if let Ok(original) = stored.view.composite(correction.original) {
                let class = WorkloadClass::classify(&spec, original.members());
                self.registry.record(
                    class,
                    CorrectionSample {
                        strategy,
                        elapsed: correction.elapsed,
                        // observed quality is unknown without running the
                        // exact corrector; record the neutral 1.0
                        quality: 1.0,
                    },
                );
            }
        }
        if report.was_already_sound() {
            record_correct(&[(Stage::Compute, compute_ns)]);
            return Ok(Corrected {
                version: index,
                composites_before: report.composites_before,
                composites_after: report.composites_after,
                payload: write_text_format(&spec, Some(&stored.view)),
            });
        }
        let payload = write_text_format(&spec, Some(&corrected));
        let new_view = StoredView::new(corrected);
        let shard_index = self.shard_index_of(id);
        let shard = &self.shards[shard_index];
        let mutator = shard.mutator.lock();
        shard.writable(shard_index)?;
        let wants_event = shard.has_watcher_for(id.0);
        let mut next = shard.state.load();
        let entry = Arc::make_mut(&mut next)
            .entries
            .get_mut(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.current != index || entry.epoch != epoch {
            // a concurrent correction or mutation already replaced the
            // version we corrected; adopt the winner instead of appending
            let winner = &entry.views[entry.current];
            let adopted = Corrected {
                version: entry.current,
                composites_before: report.composites_before,
                composites_after: winner.view.composite_count(),
                payload: write_text_format(&entry.spec, Some(&winner.view)),
            };
            record_correct(&[(Stage::Compute, compute_ns)]);
            return Ok(adopted);
        }
        let view_lines =
            (self.backend.durable() || wants_event).then(|| view_to_lines(&new_view.view));
        entry.views.push(new_view);
        entry.current = entry.views.len() - 1;
        entry.seq += 1;
        let seq = entry.seq;
        let version = entry.current;
        let mut wants_snapshot = false;
        let mut append_ns = 0u64;
        let mut fsync_ns = 0u64;
        let mut ticket = 0u64;
        if self.backend.durable() {
            let record = WalRecord::Correct {
                id: id.0,
                version,
                view_lines: view_lines.clone().expect("collected for the durable path"),
            };
            let append_start = Instant::now();
            match self.backend.append(shard_index, &record) {
                Ok(outcome) => {
                    wants_snapshot = outcome.wants_snapshot;
                    fsync_ns = outcome.fsync_ns;
                    ticket = outcome.ticket;
                    append_ns = duration_ns(append_start.elapsed()).saturating_sub(fsync_ns);
                }
                // self-heal before publish, as in `mutate_inner`: on a
                // double failure nothing is published, memory rolls back
                // and the shard degrades to read-only
                Err(e) => {
                    if let Err(rescue) = self.snapshot_shard(shard_index, &next.entries) {
                        return Err(self.degrade(shard_index, shard, &e, &rescue));
                    }
                }
            }
        }
        let publish_start = Instant::now();
        shard.state.publish(Arc::clone(&next));
        let publish_ns = duration_ns(publish_start.elapsed());
        let mut fanout_ns = 0u64;
        if wants_event {
            let fanout_start = Instant::now();
            shard.fan_out(&WatchEvent::Corrected {
                workflow: id,
                seq,
                version,
                view_lines: view_lines.expect("collected for the fan-out path"),
            });
            fanout_ns = duration_ns(fanout_start.elapsed());
            shard.metrics.verbs.record(Verb::WatchFanout, fanout_ns);
        }
        if wants_snapshot {
            self.snapshot_shard(shard_index, &next.entries)?;
        }
        // group commit: wait for durability with the mutator mutex released
        // so concurrent writers can publish into the same fsync
        drop(mutator);
        if ticket > 0 {
            fsync_ns = fsync_ns.max(self.backend.wait_durable(shard_index, ticket)?);
        }
        record_correct(&[
            (Stage::Compute, compute_ns),
            (Stage::WalAppend, append_ns),
            (Stage::Fsync, fsync_ns),
            (Stage::SnapshotPublish, publish_ns),
            (Stage::WatchFanout, fanout_ns),
        ]);
        Ok(Corrected {
            version,
            composites_before: report.composites_before,
            composites_after: report.composites_after,
            payload,
        })
    }

    /// Answers a view-level provenance query for the named task through the
    /// workflow's current view, returning the provenance task names in
    /// deterministic (task-id) order.
    ///
    /// Served off the epoch-tagged per-view [`ViewProvenanceIndex`]: the
    /// induced view graph and its reachability matrix are built once and
    /// survive both repeated queries and mutations that cannot change the
    /// induced graph; every query is row lookups, no per-request graph
    /// construction.
    ///
    /// # Errors
    /// Reports unknown workflows and task names.
    pub fn provenance(&self, id: WorkflowId, subject: &str) -> Result<Vec<String>, ServiceError> {
        let start = Instant::now();
        let mut compute_ns = 0u64;
        let (spec, stored, _, epoch) = self.snapshot(id, None)?;
        let task = spec
            .task_by_name(subject)
            .ok_or_else(|| ServiceError::UnknownTask(subject.to_owned()))?;
        let cached = stored
            .provenance
            .read()
            .as_ref()
            .filter(|(cached_epoch, _)| *cached_epoch == epoch)
            .map(|(_, index)| Arc::clone(index));
        let index = match cached {
            Some(index) => index,
            None => {
                let compute_start = Instant::now();
                let built = Arc::new(ViewProvenanceIndex::new(&spec, &stored.view));
                compute_ns = duration_ns(compute_start.elapsed());
                let mut slot = stored.provenance.write();
                match slot.as_ref() {
                    // don't clobber an index a fresher epoch already cached
                    Some((cached_epoch, _)) if *cached_epoch > epoch => {}
                    _ => *slot = Some((epoch, Arc::clone(&built))),
                }
                built
            }
        };
        let answer = index.provenance(&stored.view, task);
        let names = answer
            .tasks
            .iter()
            .filter_map(|&t| spec.task(t).ok().map(|task| task.name.clone()))
            .collect();
        let total_ns = duration_ns(start.elapsed());
        let spans = [
            (Stage::CacheLookup, total_ns.saturating_sub(compute_ns)),
            (Stage::Compute, compute_ns),
        ];
        self.shard_of(id)
            .metrics
            .verbs
            .record(Verb::Provenance, total_ns);
        self.telemetry.record_spans(&spans);
        self.telemetry
            .offer_slow(Verb::Provenance, Some(id.0), total_ns, &spans);
        Ok(names)
    }

    /// Snapshot of the per-shard serving counters.
    #[must_use]
    pub fn stats(&self) -> StatsReport {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardStat {
                shard: index,
                workflows: shard.state.load().entries.len(),
                validate_hits: shard.metrics.validate_hits.load(Ordering::Relaxed),
                validate_misses: shard.metrics.validate_misses.load(Ordering::Relaxed),
                composite_hits: shard.metrics.composite_hits.load(Ordering::Relaxed),
                composite_misses: shard.metrics.composite_misses.load(Ordering::Relaxed),
                // the wire field survives, but it is now the (lossless)
                // sum of the validate latency histogram, not a second
                // separately-maintained counter
                validate_ns: shard.metrics.verbs.snapshot(Verb::Validate).sum,
                requests: shard.metrics.requests.load(Ordering::Relaxed),
                snapshot_publishes: shard.state.publish_count(),
                active_watchers: shard.watchers.lock().len() as u64,
                dropped_watchers: shard.metrics.dropped_watchers.load(Ordering::Relaxed),
            })
            .collect();
        StatsReport {
            shards,
            registry_samples: self.registry.len(),
        }
    }

    /// Merged (cross-shard) latency histogram of one request verb.
    #[must_use]
    pub fn verb_histogram(&self, verb: Verb) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for shard in &self.shards {
            merged.merge(&shard.metrics.verbs.snapshot(verb));
        }
        merged
    }

    /// Latency histogram of one commit stage.
    #[must_use]
    pub fn stage_histogram(&self, stage: Stage) -> HistogramSnapshot {
        self.telemetry.stage_snapshot(stage)
    }

    /// The store-global telemetry registries (commit-stage timers, the
    /// slow-request ring, recovery timing).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The slow-request dump served by the `metrics slow` protocol verb:
    /// the worst-N requests with their stage breakdowns, worst first.
    #[must_use]
    pub fn slow_requests_text(&self) -> String {
        self.telemetry.slow_text()
    }

    /// Renders the Prometheus-style text exposition served by the
    /// `metrics` protocol verb: per-verb and per-commit-stage latency
    /// histograms (cumulative buckets, seconds), serving counters, watch
    /// gauges and the storage backend's WAL observation.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE wolves_request_duration_seconds histogram");
        for verb in VERBS {
            self.verb_histogram(verb).write_exposition(
                &mut out,
                "wolves_request_duration_seconds",
                &[("verb", verb.name())],
            );
        }
        let _ = writeln!(out, "# TYPE wolves_requests_total counter");
        for verb in VERBS {
            write_sample(
                &mut out,
                "wolves_requests_total",
                &[("verb", verb.name())],
                self.verb_histogram(verb).count(),
            );
        }
        let _ = writeln!(out, "# TYPE wolves_commit_stage_duration_seconds histogram");
        for stage in STAGES {
            self.telemetry.stage_snapshot(stage).write_exposition(
                &mut out,
                "wolves_commit_stage_duration_seconds",
                &[("stage", stage.name())],
            );
        }
        let mut workflows = 0u64;
        let mut validate_hits = 0u64;
        let mut validate_misses = 0u64;
        let mut composite_hits = 0u64;
        let mut composite_misses = 0u64;
        let mut requests = 0u64;
        let mut dropped_watchers = 0u64;
        let mut snapshot_publishes = 0u64;
        let mut active_watchers = 0u64;
        let mut queue_depth = 0u64;
        let mut mutation_classes = [0u64; 5];
        for shard in &self.shards {
            workflows += shard.state.load().entries.len() as u64;
            validate_hits += shard.metrics.validate_hits.load(Ordering::Relaxed);
            validate_misses += shard.metrics.validate_misses.load(Ordering::Relaxed);
            composite_hits += shard.metrics.composite_hits.load(Ordering::Relaxed);
            composite_misses += shard.metrics.composite_misses.load(Ordering::Relaxed);
            requests += shard.metrics.requests.load(Ordering::Relaxed);
            dropped_watchers += shard.metrics.dropped_watchers.load(Ordering::Relaxed);
            mutation_classes[0] += shard.metrics.mutations_monotone.load(Ordering::Relaxed);
            mutation_classes[1] += shard.metrics.mutations_local.load(Ordering::Relaxed);
            mutation_classes[2] += shard.metrics.mutations_decremental.load(Ordering::Relaxed);
            mutation_classes[3] += shard.metrics.mutations_structural.load(Ordering::Relaxed);
            mutation_classes[4] += shard.metrics.mutations_view_edit.load(Ordering::Relaxed);
            snapshot_publishes += shard.state.publish_count();
            let watchers = shard.watchers.lock();
            active_watchers += watchers.len() as u64;
            queue_depth += watchers
                .iter()
                .map(|watcher| watcher.depth.load(Ordering::Relaxed))
                .sum::<u64>();
        }
        write_sample(&mut out, "wolves_shards", &[], self.shards.len() as u64);
        write_sample(&mut out, "wolves_workflows", &[], workflows);
        write_sample(
            &mut out,
            "wolves_validate_cache_hits_total",
            &[],
            validate_hits,
        );
        write_sample(
            &mut out,
            "wolves_validate_cache_misses_total",
            &[],
            validate_misses,
        );
        write_sample(
            &mut out,
            "wolves_composite_cache_hits_total",
            &[],
            composite_hits,
        );
        write_sample(
            &mut out,
            "wolves_composite_cache_misses_total",
            &[],
            composite_misses,
        );
        write_sample(&mut out, "wolves_store_requests_total", &[], requests);
        let _ = writeln!(out, "# TYPE wolves_mutations_total counter");
        for (class, count) in [
            "monotone-safe",
            "local-rebuild",
            "decremental",
            "structural",
            "view-edit",
        ]
        .into_iter()
        .zip(mutation_classes)
        {
            write_sample(
                &mut out,
                "wolves_mutations_total",
                &[("class", class)],
                count,
            );
        }
        write_sample(
            &mut out,
            "wolves_snapshot_publishes_total",
            &[],
            snapshot_publishes,
        );
        write_sample(&mut out, "wolves_active_watchers", &[], active_watchers);
        write_sample(&mut out, "wolves_watch_queue_depth", &[], queue_depth);
        write_sample(
            &mut out,
            "wolves_dropped_watchers_total",
            &[],
            dropped_watchers,
        );
        let observed = self.backend.observe();
        write_sample(
            &mut out,
            "wolves_wal_append_bytes_total",
            &[],
            observed.append_bytes,
        );
        write_sample(
            &mut out,
            "wolves_wal_rotations_total",
            &[],
            observed.rotations,
        );
        let _ = writeln!(out, "# TYPE wolves_wal_append_duration_seconds histogram");
        observed
            .append
            .write_exposition(&mut out, "wolves_wal_append_duration_seconds", &[]);
        let _ = writeln!(out, "# TYPE wolves_wal_fsync_duration_seconds histogram");
        observed
            .fsync
            .write_exposition(&mut out, "wolves_wal_fsync_duration_seconds", &[]);
        let _ = writeln!(
            out,
            "# TYPE wolves_wal_compaction_duration_seconds histogram"
        );
        observed.compaction.write_exposition(
            &mut out,
            "wolves_wal_compaction_duration_seconds",
            &[],
        );
        let _ = writeln!(out, "# TYPE wolves_wal_group_commit_batch histogram");
        observed.group_commit_batch.write_exposition_raw(
            &mut out,
            "wolves_wal_group_commit_batch",
            &[],
        );
        write_sample(
            &mut out,
            "wolves_wal_group_commit_absorbed_total",
            &[],
            observed.group_commit_absorbed,
        );
        if let Some(gauges) = self.server_gauges.lock().as_ref() {
            write_sample(
                &mut out,
                "wolves_open_connections",
                &[],
                gauges.open_connections(),
            );
            write_sample(
                &mut out,
                "wolves_connections_accepted_total",
                &[],
                gauges.accepted_total(),
            );
            write_sample(
                &mut out,
                "wolves_event_loop_wakeups_total",
                &[],
                gauges.wakeups(),
            );
            write_sample(
                &mut out,
                "wolves_pipelined_batches_total",
                &[],
                gauges.pipelined_batches(),
            );
        }
        let _ = writeln!(
            out,
            "wolves_recovery_replay_seconds {}",
            seconds(self.telemetry.recovery_replay_ns())
        );
        write_sample(
            &mut out,
            "wolves_slow_requests_retained",
            &[],
            self.telemetry.slow().worst().len() as u64,
        );
        let _ = writeln!(out, "# TYPE wolves_shard_degraded gauge");
        for (index, shard) in self.shards.iter().enumerate() {
            let shard_label = index.to_string();
            write_sample(
                &mut out,
                "wolves_shard_degraded",
                &[("shard", &shard_label)],
                u64::from(shard.degraded.lock().is_some()),
            );
        }
        write_sample(
            &mut out,
            "wolves_degraded_shards",
            &[],
            self.degraded_shards().len() as u64,
        );
        let _ = writeln!(out, "# TYPE wolves_errors_total counter");
        for (kind, count) in self.telemetry.errors().snapshot() {
            write_sample(&mut out, "wolves_errors_total", &[("kind", kind)], count);
        }
        out
    }

    /// Subscribes to a workflow's committed changes with the default
    /// per-subscriber queue bound ([`WATCH_QUEUE_CAP`]).
    ///
    /// # Errors
    /// Reports unknown workflows.
    pub fn watch(
        &self,
        id: WorkflowId,
        mode: WatchMode,
    ) -> Result<WatchSubscription, ServiceError> {
        self.watch_with_capacity(id, mode, WATCH_QUEUE_CAP)
    }

    /// [`WorkflowStore::watch`] with an explicit queue bound (tests pin the
    /// slow-consumer drop with a tiny queue).
    ///
    /// Registration holds the shard's mutator mutex, so the subscription
    /// cut is atomic with respect to mutations: every change committed
    /// after this call returns is delivered (or the subscriber is
    /// explicitly lag-dropped), and nothing committed before it leaks in.
    /// In [`WatchMode::Resync`] the returned subscription carries an
    /// `export`-format payload consistent with the acknowledged sequence
    /// number; in [`WatchMode::From`] a stated sequence number that is not
    /// current pre-seeds the queue with a [`WatchEvent::Resync`].
    ///
    /// # Errors
    /// Reports unknown workflows.
    pub fn watch_with_capacity(
        &self,
        id: WorkflowId,
        mode: WatchMode,
        capacity: usize,
    ) -> Result<WatchSubscription, ServiceError> {
        let shard_index = self.shard_index_of(id);
        let shard = &self.shards[shard_index];
        // atomic with mutations: no event can commit between reading the
        // cut below and registering the watcher
        let _mutator = shard.mutator.lock();
        let state = shard.state.load();
        let entry = state
            .entries
            .get(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        let seq = entry.seq;
        let epoch = entry.epoch;
        let payload = matches!(mode, WatchMode::Resync).then(|| {
            let view = entry.views.get(entry.current).map(|stored| &*stored.view);
            write_text_format(&entry.spec, view)
        });
        let (sender, receiver) = mpsc::sync_channel(capacity.max(1));
        let depth = Arc::new(AtomicU64::new(0));
        if let WatchMode::From(stated) = mode {
            if stated != seq {
                // the stated cursor cannot be tailed gap-free; tell the
                // subscriber to resync before any live event arrives
                if sender
                    .try_send(WatchEvent::Resync { workflow: id, seq })
                    .is_ok()
                {
                    depth.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let lagged = Arc::new(AtomicBool::new(false));
        let token = self.next_watch_token.fetch_add(1, Ordering::Relaxed);
        shard.watchers.lock().push(Watcher {
            workflow: id.0,
            token,
            base_seq: seq,
            lagged: Arc::clone(&lagged),
            depth: Arc::clone(&depth),
            sender,
        });
        Ok(WatchSubscription {
            workflow: id,
            shard_index,
            token,
            seq,
            epoch,
            payload,
            lagged,
            depth,
            receiver,
        })
    }

    /// Tears a subscription down server-side. Idempotent: a watcher already
    /// lag-dropped (or never registered) is a no-op. The subscription's
    /// receiver keeps draining any events fanned out before the teardown.
    pub fn unwatch(&self, subscription: &WatchSubscription) {
        self.shards[subscription.shard_index]
            .watchers
            .lock()
            .retain(|watcher| watcher.token != subscription.token);
    }

    /// The workflow's current change cursor: `(seq, epoch)`. The sequence
    /// number counts every committed change (mutations and corrections);
    /// the epoch counts mutations only.
    ///
    /// # Errors
    /// Reports unknown workflows.
    pub fn cursor(&self, id: WorkflowId) -> Result<(u64, u64), ServiceError> {
        let shard = self.shard_of(id);
        let state = shard.state.load();
        let entry = state
            .entries
            .get(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        Ok((entry.seq, entry.epoch))
    }

    /// Applies one received watch event to this store as a CDC replica,
    /// cross-checking the replayed outcome against the event's: epochs,
    /// sequence numbers and (when this store collects them) spec deltas
    /// must all match, so a replica that drifts fails loudly instead of
    /// silently diverging.
    ///
    /// # Errors
    /// Reports unknown workflows, ops the replica rejects, replay
    /// divergence, and [`ServiceError::Lagged`] for a
    /// [`WatchEvent::Resync`] (the caller must re-`export` and rebuild).
    pub fn apply_watch_event(&self, event: &WatchEvent) -> Result<(), ServiceError> {
        let diverged = |what: &str, ours: u64, theirs: u64| {
            ServiceError::Recovery(format!(
                "watch replay diverged: replica {what} {ours} != event {what} {theirs}"
            ))
        };
        match event {
            WatchEvent::Mutated {
                workflow,
                seq,
                op,
                outcome,
                deltas,
            } => {
                let (mutated, applied, _) =
                    self.mutate_inner(*workflow, op.clone(), true, None, false)?;
                if mutated.epoch != outcome.epoch {
                    return Err(diverged("epoch", mutated.epoch, outcome.epoch));
                }
                let (replica_seq, _) = self.cursor(*workflow)?;
                if replica_seq != *seq {
                    return Err(diverged("seq", replica_seq, *seq));
                }
                // a durable replica collects the deltas itself; compare
                // them to the event's (an in-memory replica collects none)
                if !applied.is_empty() && applied != *deltas {
                    return Err(ServiceError::Recovery(
                        "watch replay diverged: replica spec deltas differ from the event's"
                            .to_owned(),
                    ));
                }
                Ok(())
            }
            WatchEvent::Corrected {
                workflow,
                seq,
                version,
                view_lines,
            } => {
                self.install_correction(workflow.0, *version, view_lines)?;
                let (replica_seq, _) = self.cursor(*workflow)?;
                if replica_seq != *seq {
                    return Err(diverged("seq", replica_seq, *seq));
                }
                Ok(())
            }
            WatchEvent::Resync { .. } => Err(ServiceError::Lagged),
        }
    }
}

/// Shared tail of [`WorkflowStore::mutate`]: version truncation, the
/// retag-or-drop pass over the cached verdicts, the provenance cache and the
/// epoch bump.
fn finish_mutation(
    entry: &mut Entry,
    class: &str,
    affected: &Affected,
    provenance_survives: bool,
    truncate: bool,
    new_epoch: u64,
) -> Mutated {
    let old_epoch = new_epoch - 1;
    if truncate && entry.views.len() > 1 {
        let kept = Arc::clone(&entry.views[entry.current]);
        entry.views = vec![kept];
        entry.current = 0;
    }
    let stored = &entry.views[entry.current];
    let live: BTreeSet<CompositeTaskId> = stored.view.composite_ids().collect();
    let mut invalidated = 0usize;
    let mut retained = 0usize;
    {
        let mut map = stored.verdicts.write();
        map.retain(|&composite, cached| {
            let survives = cached.epoch == old_epoch
                && !affected.contains(composite)
                && live.contains(&composite);
            if survives {
                cached.epoch = new_epoch;
                retained += 1;
            } else {
                invalidated += 1;
            }
            survives
        });
    }
    {
        let mut slot = stored.provenance.write();
        match slot.as_mut() {
            Some((epoch, _)) if provenance_survives && *epoch == old_epoch => {
                *epoch = new_epoch;
            }
            _ => *slot = None,
        }
    }
    entry.epoch = new_epoch;
    Mutated {
        epoch: new_epoch,
        class: class.to_owned(),
        invalidated,
        retained,
        version: entry.current,
    }
}

/// Refuses mutation ops whose names cannot survive the single-line,
/// TAB-separated wire/WAL grammar: a TAB or line break would corrupt the
/// frame — or worse, silently truncate the name on replay, recovering a
/// store that diverges from the one that crashed. Only durable backends
/// enforce this (the wire protocol cannot produce such names; this guards
/// in-process callers of [`WorkflowStore::mutate`]).
fn check_op_serialisable(op: &MutateOp) -> Result<(), ServiceError> {
    let check = |what: &str, text: &str, reserved: &[char]| -> Result<(), ServiceError> {
        if text.contains(['\t', '\n', '\r']) || text.contains(reserved) {
            return Err(ServiceError::Persistence(format!(
                "{what} {text:?} contains a TAB, line break or reserved separator; the \
                 write-ahead log's line grammar cannot carry it"
            )));
        }
        Ok(())
    };
    match op {
        MutateOp::AddTask { name } | MutateOp::RemoveTask { name } => check("task name", name, &[]),
        MutateOp::AddEdge { from, to } | MutateOp::RemoveEdge { from, to } => {
            check("task name", from, &[])?;
            check("task name", to, &[])
        }
        MutateOp::Split { composite, parts } => {
            check("composite name", composite, &[])?;
            for part in parts {
                for member in part {
                    // ';' and ',' are the wire grammar's list separators
                    check("task name", member, &[';', ','])?;
                }
            }
            Ok(())
        }
        MutateOp::Merge { name, composites } => {
            check("composite name", name, &[])?;
            for composite in composites {
                check("composite name", composite, &[';'])?;
            }
            Ok(())
        }
    }
}

/// Collects the spec deltas produced since the write-ahead log last
/// consumed the entry's delta log ([`Entry::logged_epoch`]). The delta log
/// is bounded ([`WorkflowSpec::set_delta_log_cap`]); because every mutation
/// consumes its deltas synchronously under the shard write lock the bound
/// can never evict an unconsumed delta — but if it ever did (a bug, or a
/// cap set to less than one mutation's worth of deltas), this errors loudly
/// instead of silently persisting a log with holes.
fn consume_deltas(entry: &Entry) -> Result<Vec<SpecDelta>, ServiceError> {
    entry.spec.deltas_since(entry.logged_epoch).ok_or_else(|| {
        ServiceError::Persistence(format!(
            "the spec delta log evicted epochs {}..={} before the write-ahead log consumed \
             them; raise the bound with WorkflowSpec::set_delta_log_cap",
            entry.logged_epoch + 1,
            entry.spec.epoch()
        ))
    })
}

/// Computes which composites of the current view an edge mutation affects:
/// the composites holding the endpoints (their boundary sets can move even
/// when the reachability closure is unchanged) plus every composite with a
/// member in a dirty reachability row. The boolean reports whether the edge
/// is internal to one composite — the induced view graph is then unchanged
/// and the provenance index survives the edit.
fn edge_affected_composites(
    entry: &Entry,
    from: TaskId,
    to: TaskId,
    dirty: &DirtyRows,
) -> (Affected, bool) {
    let view = &entry.views[entry.current].view;
    let from_composite = view.composite_of(from);
    let to_composite = view.composite_of(to);
    let internal = from_composite.is_some() && from_composite == to_composite;
    if dirty.is_all() {
        return (Affected::All, internal);
    }
    let mut affected: BTreeSet<CompositeTaskId> =
        from_composite.into_iter().chain(to_composite).collect();
    if !dirty.is_clean() {
        let reach = entry.spec.reachability();
        for (id, composite) in view.composites() {
            if affected.contains(&id) {
                continue;
            }
            let touched = composite.members().iter().any(|&task| {
                reach
                    .component_of(task)
                    .map_or(true, |comp| dirty.contains(comp))
            });
            if touched {
                affected.insert(id);
            }
        }
    }
    (Affected::Composites(affected), internal)
}

/// Resolves a composite task of `view` by display name.
fn composite_by_name(view: &WorkflowView, name: &str) -> Result<CompositeTaskId, ServiceError> {
    view.composites()
        .find(|(_, composite)| composite.name == name)
        .map(|(id, _)| id)
        .ok_or_else(|| ServiceError::UnknownCompositeName(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FileBackend, PersistConfig};
    use wolves_repo::figure1;

    fn add_edge(from: &str, to: &str) -> MutateOp {
        MutateOp::AddEdge {
            from: from.to_owned(),
            to: to.to_owned(),
        }
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "wolves-store-{tag}-{}-{unique}",
            std::process::id()
        ))
    }

    fn durable_config(root: &std::path::Path) -> PersistConfig {
        PersistConfig {
            shards: 2,
            ..PersistConfig::new(root)
        }
    }

    /// Drives a store through the full verb set and captures every served
    /// answer, so recovered state can be compared answer-for-answer.
    fn drive_and_observe(store: &WorkflowStore, id: WorkflowId) -> Vec<String> {
        let mut observed = Vec::new();
        let verdict = store.validate(id, None).unwrap();
        observed.push(format!(
            "validate v{} sound={} unsound={:?}",
            verdict.version, verdict.sound, verdict.unsound
        ));
        for subject in ["Format alignment", "Display tree"] {
            observed.push(format!(
                "provenance {subject}: {:?}",
                store.provenance(id, subject).unwrap()
            ));
        }
        observed.push(format!("export:\n{}", store.export(id).unwrap()));
        observed
    }

    #[test]
    fn durable_store_recovers_identical_answers_after_restart() {
        let root = temp_root("recover");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, report) = WorkflowStore::open(backend).unwrap();
        assert_eq!(report.workflows, 0);
        let fixture = figure1();
        let id = store
            .try_register(fixture.spec, Some(fixture.view))
            .unwrap();
        store.correct(id, Strategy::Strong).unwrap();
        let mutated = store
            .mutate(
                id,
                add_edge("Check additional annotations", "Build phylo tree"),
            )
            .unwrap();
        assert_eq!(mutated.epoch, 1);
        store
            .mutate(
                id,
                MutateOp::Merge {
                    name: "Front end".to_owned(),
                    composites: vec![
                        "Retrieve entries (13)".to_owned(),
                        "Annotations (14)".to_owned(),
                    ],
                },
            )
            .unwrap();
        let mutated = store
            .mutate(
                id,
                MutateOp::AddTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(mutated.epoch, 3);
        store
            .mutate(id, add_edge("Display tree", "Archive results"))
            .unwrap();
        let before = drive_and_observe(&store, id);
        drop(store);

        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (recovered, report) = WorkflowStore::open(backend).unwrap();
        assert_eq!(report.workflows, 1);
        assert!(report.replayed_records >= 5, "{report}");
        assert_eq!(drive_and_observe(&recovered, id), before);
        // the epoch counter resumes exactly where the crashed store stopped
        let mutated = recovered
            .mutate(id, add_edge("Curate annotations", "Archive results"))
            .unwrap();
        assert_eq!(mutated.epoch, 5);
        // recovery compacted: a third open replays the snapshot, not records
        drop(recovered);
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (_again, report) = WorkflowStore::open(backend).unwrap();
        assert_eq!(report.workflows, 1);
        assert_eq!(report.snapshot_entries, 1);
        assert_eq!(report.replayed_records, 1, "only the post-compaction edit");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recovered_ids_and_versions_match_the_live_store() {
        let root = temp_root("ids");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, _) = WorkflowStore::open(backend).unwrap();
        let first = {
            let f = figure1();
            store.try_register(f.spec, Some(f.view)).unwrap()
        };
        let second = {
            let f = figure1();
            store.try_register(f.spec, Some(f.view)).unwrap()
        };
        store.correct(second, Strategy::Weak).unwrap();
        drop(store);
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (recovered, _) = WorkflowStore::open(backend).unwrap();
        // old ids answer; a fresh registration continues the id sequence
        assert!(recovered.validate(first, None).is_ok());
        assert_eq!(recovered.validate(second, None).unwrap().version, 1);
        assert!(recovered.validate(second, Some(0)).is_ok());
        let f = figure1();
        let third = recovered.try_register(f.spec, Some(f.view)).unwrap();
        assert_eq!(third.0, second.0 + 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cas_mutations_apply_at_most_once() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        assert_eq!(store.cursor(id).unwrap(), (0, 0));
        let op = add_edge("Check additional annotations", "Build phylo tree");
        let mutated = store.mutate_cas(id, op.clone(), Some(0)).unwrap();
        assert_eq!(mutated.epoch, 1);
        // the retry scenario: the first send applied (ack lost), the
        // resend carries the same expectation and must change nothing
        let err = store.mutate_cas(id, op, Some(0)).unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::EpochConflict {
                    expected: 0,
                    actual: 1
                }
            ),
            "{err}"
        );
        assert_eq!(store.cursor(id).unwrap(), (1, 1));
        // a fresh expectation applies normally
        let mutated = store
            .mutate_cas(id, add_edge("Display tree", "Format alignment"), Some(1))
            .unwrap();
        assert_eq!(mutated.epoch, 2);
    }

    #[test]
    fn a_double_storage_failure_degrades_the_shard_and_heal_reopens_writes() {
        use crate::storage::{FaultInjector, FaultPlan};
        let root = temp_root("degrade");
        let config = PersistConfig {
            shards: 1,
            ..PersistConfig::new(&root)
        };
        let backend = Arc::new(FileBackend::open(config).unwrap());
        // append 2 (the first mutation) fails, and so does its rescue
        // snapshot — the double failure that degrades the shard
        let plan = FaultPlan::parse("append-err=2,snap-err=1").unwrap();
        let faulted = Arc::new(FaultInjector::new(backend, plan));
        let (store, _) = WorkflowStore::open(faulted).unwrap();
        let fixture = figure1();
        let id = store
            .try_register(fixture.spec, Some(fixture.view))
            .unwrap();
        let op = add_edge("Check additional annotations", "Build phylo tree");
        let err = store.mutate(id, op.clone()).unwrap_err();
        assert!(
            matches!(err, ServiceError::Degraded { shard: 0, .. }),
            "{err}"
        );
        assert_eq!(store.degraded_shards(), vec![0]);
        // reads keep serving off the last published snapshot
        assert!(store.validate(id, None).is_ok());
        assert!(store.export(id).is_ok());
        assert!(store.provenance(id, "Display tree").is_ok());
        // further writes fail fast without touching the backend
        assert!(matches!(
            store.mutate(id, op.clone()),
            Err(ServiceError::Degraded { .. })
        ));
        let metrics = store.metrics_text();
        assert!(
            metrics.contains("wolves_shard_degraded{shard=\"0\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("wolves_errors_total{kind=\"degraded\"}"),
            "{metrics}"
        );
        // heal: the retried snapshot rotates past the damage and re-opens
        // writes — no restart
        assert_eq!(store.heal(), (1, 0));
        assert!(store.degraded_shards().is_empty());
        assert!(store
            .metrics_text()
            .contains("wolves_shard_degraded{shard=\"0\"} 0"));
        let mutated = store.mutate(id, op).unwrap();
        assert_eq!(mutated.epoch, 1, "the failed mutation was never applied");
        drop(store);
        // recovery on a clean backend sees exactly the acked history
        let config = PersistConfig {
            shards: 1,
            ..PersistConfig::new(&root)
        };
        let backend = Arc::new(FileBackend::open(config).unwrap());
        let (recovered, report) = WorkflowStore::open(backend).unwrap();
        assert_eq!(report.workflows, 1);
        assert_eq!(recovered.cursor(id).unwrap(), (1, 1));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn consume_deltas_errors_loudly_on_eviction() {
        let mut spec = figure1().spec;
        spec.set_delta_log_cap(2);
        let epoch_before = spec.epoch();
        for i in 0..4 {
            spec.apply(SpecMutation::AddTask {
                name: format!("extra-{i}"),
            })
            .unwrap();
        }
        let entry = Entry {
            // pretend the WAL last consumed up to `epoch_before`: the four
            // deltas since were already evicted down to the cap of 2
            logged_epoch: epoch_before,
            epoch: 4,
            seq: 4,
            current: 0,
            views: Vec::new(),
            spec: Arc::new(spec),
        };
        let err = consume_deltas(&entry).unwrap_err();
        assert!(matches!(err, ServiceError::Persistence(_)));
        assert!(err.to_string().contains("set_delta_log_cap"), "{err}");
        // a caught-up entry consumes nothing
        let caught_up = Entry {
            logged_epoch: entry.spec.epoch(),
            spec: Arc::clone(&entry.spec),
            views: Vec::new(),
            current: 0,
            epoch: 4,
            seq: 4,
        };
        assert!(consume_deltas(&caught_up).unwrap().is_empty());
    }

    #[test]
    fn unserialisable_names_are_rejected_by_durable_registration() {
        let root = temp_root("names");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, _) = WorkflowStore::open(backend).unwrap();
        let mut spec = WorkflowSpec::new("bad");
        spec.add_task(wolves_workflow::AtomicTask::new("task\nwith newline"))
            .unwrap();
        assert!(matches!(
            store.try_register(spec, None),
            Err(ServiceError::Persistence(_))
        ));
        // the in-memory store accepts the same spec (nothing to serialise)
        let memory = WorkflowStore::new(1);
        let mut spec = WorkflowSpec::new("bad");
        spec.add_task(wolves_workflow::AtomicTask::new("task\nwith newline"))
            .unwrap();
        assert!(memory.try_register(spec, None).is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unserialisable_op_names_are_rejected_by_durable_mutation() {
        let root = temp_root("op-names");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, _) = WorkflowStore::open(backend).unwrap();
        let fixture = figure1();
        let id = store
            .try_register(fixture.spec, Some(fixture.view))
            .unwrap();
        let epoch_probe = |store: &WorkflowStore| {
            store
                .mutate(
                    id,
                    MutateOp::AddTask {
                        name: format!("probe-{}", store.stats().requests()),
                    },
                )
                .unwrap()
                .epoch
        };
        let before = epoch_probe(&store);
        for op in [
            MutateOp::AddTask {
                name: "a\nb".to_owned(),
            },
            MutateOp::AddTask {
                name: "a\tb".to_owned(),
            },
            MutateOp::Merge {
                name: "ok".to_owned(),
                composites: vec!["a;b".to_owned()],
            },
            MutateOp::Split {
                composite: "ok".to_owned(),
                parts: vec![vec!["a,b".to_owned()]],
            },
        ] {
            let err = store.mutate(id, op).unwrap_err();
            assert!(matches!(err, ServiceError::Persistence(_)), "{err}");
        }
        // the rejections applied nothing: the epoch advanced only by the
        // probes themselves
        assert_eq!(epoch_probe(&store), before + 1);
        // the in-memory store still accepts such names (nothing to log)
        let memory = WorkflowStore::new(1);
        let f = figure1();
        let mem_id = memory.try_register(f.spec, Some(f.view)).unwrap();
        assert!(memory
            .mutate(
                mem_id,
                MutateOp::AddTask {
                    name: "a\tb".to_owned(),
                },
            )
            .is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn register_validate_and_cache() {
        let store = WorkflowStore::new(4);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let first = store.validate(id, None).unwrap();
        assert!(!first.sound);
        assert!(!first.cached);
        assert_eq!(first.unsound, vec!["Curate & align (16)".to_owned()]);
        let second = store.validate(id, None).unwrap();
        assert!(second.cached);
        assert_eq!(second.unsound, first.unsound);
        let stats = store.stats();
        assert_eq!(stats.validate_hits(), 1);
        assert_eq!(stats.validate_misses(), 1);
        // composite granularity: 7 computed on the first request, 7 served
        // from cache on the second
        assert_eq!(stats.composite_misses(), 7);
        assert_eq!(stats.composite_hits(), 7);
        assert_eq!(stats.workflows(), 1);
    }

    #[test]
    fn correction_appends_a_sound_version() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let corrected = store.correct(id, Strategy::Strong).unwrap();
        assert_eq!(corrected.version, 1);
        assert_eq!(corrected.composites_before, 7);
        assert_eq!(corrected.composites_after, 8);
        // the current view is now the corrected one and validates sound...
        let verdict = store.validate(id, None).unwrap();
        assert!(verdict.sound);
        assert_eq!(verdict.version, 1);
        // ...while the original version is still queryable and unsound
        let original = store.validate(id, Some(0)).unwrap();
        assert!(!original.sound);
        // the correction fed the estimation registry
        assert_eq!(store.registry().len(), 1);
        // correcting a sound view is a no-op that keeps the version
        let again = store.correct(id, Strategy::Strong).unwrap();
        assert_eq!(again.version, 1);
        assert_eq!(again.composites_before, again.composites_after);
    }

    #[test]
    fn provenance_is_exact_through_the_corrected_view() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec.clone(), Some(fixture.view));
        store.correct(id, Strategy::Strong).unwrap();
        let names = store.provenance(id, "Format alignment").unwrap();
        assert!(names.contains(&"Create alignment".to_owned()));
        assert!(names.contains(&"Extract sequences".to_owned()));
        assert!(!names.contains(&"Curate annotations".to_owned()));
        assert!(matches!(
            store.provenance(id, "No such task"),
            Err(ServiceError::UnknownTask(_))
        ));
    }

    #[test]
    fn repeated_provenance_queries_reuse_the_cached_index() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec.clone(), Some(fixture.view.clone()));
        let first = store.provenance(id, "Format alignment").unwrap();
        // second query (different subject) rides the already-built index
        let other = store.provenance(id, "Display tree").unwrap();
        assert!(other.len() > first.len());
        // answers are stable across repeated queries
        assert_eq!(store.provenance(id, "Format alignment").unwrap(), first);
        // the cached answers agree with a fresh traversal
        let task = fixture.spec.task_by_name("Format alignment").unwrap();
        let walked = wolves_provenance::view_level_provenance(&fixture.spec, &fixture.view, task);
        let walked_names: Vec<String> = walked
            .tasks
            .iter()
            .filter_map(|&t| fixture.spec.task(t).ok().map(|task| task.name.clone()))
            .collect();
        assert_eq!(first, walked_names);
    }

    #[test]
    fn text_registration_and_errors() {
        let store = WorkflowStore::new(3);
        let fixture = figure1();
        let payload = write_text_format(&fixture.spec, Some(&fixture.view));
        let id = store.register_text(&payload).unwrap();
        assert!(!store.validate(id, None).unwrap().sound);
        assert!(matches!(
            store.register_text("garbage\tline"),
            Err(ServiceError::Parse(_))
        ));
        assert!(matches!(
            store.validate(WorkflowId(999), None),
            Err(ServiceError::UnknownWorkflow(_))
        ));
        assert!(matches!(
            store.validate(id, Some(5)),
            Err(ServiceError::UnknownView(_, 5))
        ));
        let bare = store.register(figure1().spec, None);
        assert!(matches!(
            store.validate(bare, None),
            Err(ServiceError::NoView(_))
        ));
    }

    #[test]
    fn ids_spread_over_shards() {
        let store = WorkflowStore::new(4);
        for _ in 0..32 {
            let fixture = figure1();
            store.register(fixture.spec, Some(fixture.view));
        }
        let stats = store.stats();
        assert_eq!(stats.workflows(), 32);
        let populated = stats.shards.iter().filter(|s| s.workflows > 0).count();
        assert!(populated >= 2, "expected ≥2 shards in use, got {populated}");
    }

    #[test]
    fn mutate_preserves_unaffected_cached_verdicts() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let first = store.validate(id, None).unwrap();
        assert!(!first.sound);
        let stats = store.stats();
        assert_eq!(stats.composite_misses(), 7);
        assert_eq!(stats.composite_hits(), 0);

        // an intra-composite edge whose endpoints were already connected:
        // the reachability closure is untouched (monotone-safe, empty dirty
        // set), so only the endpoint composite is invalidated — its boundary
        // could have moved
        let outcome = store
            .mutate(
                id,
                add_edge("Check additional annotations", "Build phylo tree"),
            )
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.class, "monotone-safe");
        assert_eq!(outcome.invalidated, 1);
        assert_eq!(outcome.retained, 6);

        let second = store.validate(id, None).unwrap();
        assert!(!second.sound);
        assert!(!second.cached);
        let stats = store.stats();
        assert_eq!(
            stats.composite_misses(),
            8,
            "only 'Build Phylo Tree (19)' recomputed"
        );
        assert_eq!(
            stats.composite_hits(),
            6,
            "six cached verdicts survived the edit"
        );
    }

    #[test]
    fn mutate_add_edge_dirties_ancestor_composites_only() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.validate(id, None).unwrap();
        // Curate annotations -> Create alignment extends the closure of the
        // ancestors whose rows actually change: 'Annotations (14)' (task 3)
        // and the endpoint composite 16. Tasks 1 and 2 already reached
        // Create alignment through the sequences branch, so 13 — and 15,
        // 17, 18, 19 — survive untouched.
        let outcome = store
            .mutate(id, add_edge("Curate annotations", "Create alignment"))
            .unwrap();
        assert_eq!(outcome.class, "monotone-safe");
        assert_eq!(outcome.invalidated, 2);
        assert_eq!(outcome.retained, 5);
        let verdict = store.validate(id, None).unwrap();
        // 16 is still unsound: Create alignment (also an input) cannot reach
        // Curate annotations (also an output)
        assert_eq!(verdict.unsound, vec!["Curate & align (16)".to_owned()]);
        let stats = store.stats();
        assert_eq!(stats.composite_misses(), 7 + 2);
        assert_eq!(stats.composite_hits(), 5);
    }

    #[test]
    fn mutate_split_repairs_and_merge_edits_in_place() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        assert!(!store.validate(id, None).unwrap().sound);
        // the user's own correction loop: split the unsound composite
        let outcome = store
            .mutate(
                id,
                MutateOp::Split {
                    composite: "Curate & align (16)".to_owned(),
                    parts: vec![
                        vec!["Curate annotations".to_owned()],
                        vec!["Create alignment".to_owned()],
                    ],
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "view-edit");
        assert_eq!(outcome.invalidated, 1, "only the split composite dropped");
        assert_eq!(outcome.retained, 6);
        let verdict = store.validate(id, None).unwrap();
        assert!(verdict.sound);
        let stats = store.stats();
        // the two split parts computed fresh; the other six served cached
        assert_eq!(stats.composite_misses(), 7 + 2);
        assert_eq!(stats.composite_hits(), 6);

        // merge two sound composites back together
        let outcome = store
            .mutate(
                id,
                MutateOp::Merge {
                    name: "Front end".to_owned(),
                    composites: vec![
                        "Retrieve entries (13)".to_owned(),
                        "Annotations (14)".to_owned(),
                    ],
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "view-edit");
        assert_eq!(outcome.invalidated, 2);
        assert!(store.validate(id, None).unwrap().sound);

        // error paths
        assert!(matches!(
            store.mutate(
                id,
                MutateOp::Merge {
                    name: "x".to_owned(),
                    composites: vec!["No such composite".to_owned()],
                }
            ),
            Err(ServiceError::UnknownCompositeName(_))
        ));
        assert!(matches!(
            store.mutate(id, add_edge("nope", "Display tree")),
            Err(ServiceError::UnknownTask(_))
        ));
        assert!(matches!(
            store.mutate(WorkflowId(999), add_edge("a", "b")),
            Err(ServiceError::UnknownWorkflow(_))
        ));
    }

    #[test]
    fn mutate_task_ops_rebase_the_version_history() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.correct(id, Strategy::Strong).unwrap();
        let outcome = store
            .mutate(
                id,
                MutateOp::AddTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "monotone-safe");
        assert_eq!(outcome.version, 0, "history rebased to the mutated view");
        assert!(matches!(
            store.validate(id, Some(1)),
            Err(ServiceError::UnknownView(_, 1))
        ));
        // the new task joins the view as a singleton and is fully served
        store
            .mutate(id, add_edge("Display tree", "Archive results"))
            .unwrap();
        assert!(store.validate(id, None).unwrap().sound);
        let names = store.provenance(id, "Archive results").unwrap();
        assert!(names.contains(&"Display tree".to_owned()));
        // duplicate task names are rejected by the model layer
        assert!(matches!(
            store.mutate(
                id,
                MutateOp::AddTask {
                    name: "Archive results".to_owned(),
                }
            ),
            Err(ServiceError::Mutation(_))
        ));
        // removing the task again runs the decremental maintenance (the
        // matrix is warm from the validate) and drops it from the view
        let outcome = store
            .mutate(
                id,
                MutateOp::RemoveTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "decremental");
        assert!(store.validate(id, None).unwrap().sound);
        assert!(matches!(
            store.provenance(id, "Archive results"),
            Err(ServiceError::UnknownTask(_))
        ));
    }

    #[test]
    fn mutate_remove_edge_is_decremental_and_observed_by_validation() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.correct(id, Strategy::Strong).unwrap();
        assert!(store.validate(id, None).unwrap().sound);
        // removing Split entries -> Extract sequences severs the path that
        // kept 'Retrieve entries (13)' sound towards the sequences branch;
        // the warm matrix absorbs it in place and survivors keep their
        // cached verdicts
        let outcome = store
            .mutate(
                id,
                MutateOp::RemoveEdge {
                    from: "Split entries".to_owned(),
                    to: "Extract sequences".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "decremental");
        assert!(
            outcome.retained > 0,
            "decremental deltas keep untouched composites cached \
             (retained {} / invalidated {})",
            outcome.retained,
            outcome.invalidated
        );
        // removing a dependency that does not exist is a model-layer error
        assert!(matches!(
            store.mutate(
                id,
                MutateOp::RemoveEdge {
                    from: "Split entries".to_owned(),
                    to: "Extract sequences".to_owned(),
                }
            ),
            Err(ServiceError::Mutation(_))
        ));
    }

    #[test]
    fn mutate_remove_edge_keeps_survivor_composite_verdicts_cached() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.validate(id, None).unwrap();
        let stats = store.stats();
        assert_eq!(stats.composite_misses(), 7);
        assert_eq!(stats.composite_hits(), 0);

        // add a redundant intra-composite edge, re-validate, then take the
        // edge right back out: the endpoints stay connected through the
        // original path, so the removal rides the decremental fast path
        // with an empty dirty set and only the endpoint composite drops
        store
            .mutate(
                id,
                add_edge("Check additional annotations", "Build phylo tree"),
            )
            .unwrap();
        store.validate(id, None).unwrap();
        let outcome = store
            .mutate(
                id,
                MutateOp::RemoveEdge {
                    from: "Check additional annotations".to_owned(),
                    to: "Build phylo tree".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "decremental");
        assert_eq!(outcome.invalidated, 1, "only the endpoint composite drops");
        assert_eq!(outcome.retained, 6);

        let verdict = store.validate(id, None).unwrap();
        assert!(!verdict.sound, "figure 1 stays unsound either way");
        let stats = store.stats();
        assert_eq!(
            stats.composite_misses(),
            7 + 1 + 1,
            "only 'Build Phylo Tree (19)' recomputed after each edit"
        );
        assert_eq!(
            stats.composite_hits(),
            6 + 6,
            "six cached verdicts survived each edit"
        );
    }

    #[test]
    fn metrics_count_mutation_classes_and_removals_stay_nonstructural() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.validate(id, None).unwrap();
        // an add/remove edit script: with a warm matrix every removal rides
        // the decremental path, so the structural counter never moves
        store
            .mutate(
                id,
                add_edge("Check additional annotations", "Build phylo tree"),
            )
            .unwrap();
        store
            .mutate(
                id,
                MutateOp::RemoveEdge {
                    from: "Check additional annotations".to_owned(),
                    to: "Build phylo tree".to_owned(),
                },
            )
            .unwrap();
        store
            .mutate(
                id,
                MutateOp::AddTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        store
            .mutate(
                id,
                MutateOp::RemoveTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        store
            .mutate(
                id,
                MutateOp::Merge {
                    name: "Front end".to_owned(),
                    composites: vec![
                        "Retrieve entries (13)".to_owned(),
                        "Annotations (14)".to_owned(),
                    ],
                },
            )
            .unwrap();
        let text = store.metrics_text();
        assert!(
            text.contains("wolves_mutations_total{class=\"monotone-safe\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("wolves_mutations_total{class=\"decremental\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("wolves_mutations_total{class=\"view-edit\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("wolves_mutations_total{class=\"structural\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn provenance_cache_survives_internal_edges_and_tracks_cross_edges() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let before = store.provenance(id, "Create alignment").unwrap();
        assert!(!before.contains(&"Check additional annotations".to_owned()));

        // internal edge (both endpoints in 'Build Phylo Tree (19)', already
        // connected): the induced view graph is unchanged, the cached index
        // survives and the answers stay put
        store
            .mutate(id, add_edge("Check additional annotations", "Display tree"))
            .unwrap();
        assert_eq!(store.provenance(id, "Create alignment").unwrap(), before);

        // a cross-composite edge 19 -> 15 rewires the induced graph: the
        // index is rebuilt and the provenance answer gains 19's tasks
        store
            .mutate(
                id,
                add_edge("Process additional annotations", "Extract sequences"),
            )
            .unwrap();
        let after = store.provenance(id, "Create alignment").unwrap();
        assert!(after.contains(&"Check additional annotations".to_owned()));
    }
}
