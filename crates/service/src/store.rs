//! The sharded, cached workflow store.
//!
//! Workflows are spread over `N` shards by hashing their id; each shard is an
//! independently `RwLock`-guarded map, so requests for workflows on different
//! shards never contend. Two levels of caching keep repeated requests cheap:
//!
//! * **Reachability reuse** — a registered [`WorkflowSpec`] is stored behind
//!   an `Arc` and its lazily built `ReachMatrix` is primed at registration
//!   time, so no validate/correct request ever rebuilds reachability.
//! * **Verdict caching** — every stored view version carries a `OnceLock`'d
//!   validation verdict; repeated `Validate` requests on the same version are
//!   answered from the cache (counted as shard *hits*).
//!
//! Corrections append the corrected view as a new version (versions are
//! immutable once stored, which is what makes the verdict cache sound) and
//! feed observed timings into the [`EstimationRegistry`] so the estimator
//! learns from live traffic.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::RwLock;
use wolves_core::correct::{correct_view, Strategy};
use wolves_core::estimate::{CorrectionSample, EstimationRegistry, WorkloadClass};
use wolves_core::validate::validate;
use wolves_moml::{read_text_format, write_text_format};
use wolves_provenance::ViewProvenanceIndex;
use wolves_workflow::{WorkflowSpec, WorkflowView};

use crate::error::ServiceError;
use crate::proto::{Corrected, ShardStat, StatsReport, Verdict};

/// Identifier of a registered workflow, assigned by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkflowId(pub u64);

impl fmt::Display for WorkflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One immutable view version plus its lazily computed verdict and
/// provenance index.
#[derive(Debug)]
struct StoredView {
    view: Arc<WorkflowView>,
    verdict: OnceLock<VerdictSummary>,
    /// Matrix-backed provenance index, built on the first provenance query
    /// for this version and reused by every later one (version immutability
    /// makes the cache sound, exactly like the verdict).
    provenance: OnceLock<ViewProvenanceIndex>,
}

#[derive(Debug, Clone)]
struct VerdictSummary {
    sound: bool,
    unsound: Vec<String>,
}

impl StoredView {
    fn new(view: WorkflowView) -> Arc<Self> {
        Arc::new(StoredView {
            view: Arc::new(view),
            verdict: OnceLock::new(),
            provenance: OnceLock::new(),
        })
    }
}

/// One registered workflow: the spec and its view versions.
#[derive(Debug)]
struct Entry {
    spec: Arc<WorkflowSpec>,
    views: Vec<Arc<StoredView>>,
    current: usize,
}

/// Monotone serving counters of one shard. All counters are relaxed atomics:
/// they are statistics, not synchronisation.
#[derive(Debug, Default)]
struct ShardMetrics {
    validate_hits: AtomicU64,
    validate_misses: AtomicU64,
    validate_ns: AtomicU64,
    requests: AtomicU64,
}

#[derive(Debug)]
struct Shard {
    entries: RwLock<HashMap<u64, Entry>>,
    metrics: ShardMetrics,
}

/// The sharded workflow store described in the module docs.
#[derive(Debug)]
pub struct WorkflowStore {
    shards: Vec<Shard>,
    next_id: AtomicU64,
    registry: EstimationRegistry,
}

impl WorkflowStore {
    /// Creates a store with `shard_count` shards (at least one).
    #[must_use]
    pub fn new(shard_count: usize) -> Self {
        let shards = (0..shard_count.max(1))
            .map(|_| Shard {
                entries: RwLock::new(HashMap::new()),
                metrics: ShardMetrics::default(),
            })
            .collect();
        WorkflowStore {
            shards,
            next_id: AtomicU64::new(0),
            registry: EstimationRegistry::new(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The estimation registry fed by correction requests.
    #[must_use]
    pub fn registry(&self) -> &EstimationRegistry {
        &self.registry
    }

    fn shard_of(&self, id: WorkflowId) -> &Shard {
        let mut hasher = DefaultHasher::new();
        id.0.hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Registers a workflow and optional view, returning the assigned id.
    ///
    /// The spec's reachability matrix is primed here, outside any lock, so
    /// every later request shares the already-built matrix.
    pub fn register(&self, spec: WorkflowSpec, view: Option<WorkflowView>) -> WorkflowId {
        let _ = spec.reachability();
        let id = WorkflowId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let entry = Entry {
            spec: Arc::new(spec),
            views: view.map(StoredView::new).into_iter().collect(),
            current: 0,
        };
        let shard = self.shard_of(id);
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        shard.entries.write().insert(id.0, entry);
        id
    }

    /// Registers a workflow from a native text-format payload.
    ///
    /// # Errors
    /// Reports payloads that do not parse as the text format.
    pub fn register_text(&self, payload: &str) -> Result<WorkflowId, ServiceError> {
        let imported = read_text_format(payload)?;
        Ok(self.register(imported.spec, imported.view))
    }

    /// Snapshot of a workflow's spec and a view version (current when
    /// `version` is `None`), taken under the shard read lock.
    fn snapshot(
        &self,
        id: WorkflowId,
        version: Option<usize>,
    ) -> Result<(Arc<WorkflowSpec>, Arc<StoredView>, usize), ServiceError> {
        let shard = self.shard_of(id);
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let entries = shard.entries.read();
        let entry = entries
            .get(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.views.is_empty() {
            return Err(ServiceError::NoView(id));
        }
        let index = version.unwrap_or(entry.current);
        let stored = entry
            .views
            .get(index)
            .ok_or(ServiceError::UnknownView(id, index))?;
        Ok((Arc::clone(&entry.spec), Arc::clone(stored), index))
    }

    /// Validates a view version, serving the cached verdict when one exists.
    ///
    /// # Errors
    /// Reports unknown workflows and view versions.
    pub fn validate(
        &self,
        id: WorkflowId,
        version: Option<usize>,
    ) -> Result<Verdict, ServiceError> {
        let start = Instant::now();
        let (spec, stored, index) = self.snapshot(id, version)?;
        // exactly one caller's closure runs per version — racers block on
        // the OnceLock and are counted as cache hits, keeping the hit/miss
        // counters deterministic (one miss per version) under concurrency
        let mut computed = false;
        let summary = stored.verdict.get_or_init(|| {
            computed = true;
            let report = validate(&spec, &stored.view);
            VerdictSummary {
                sound: report.is_sound(),
                unsound: report
                    .reports()
                    .iter()
                    .filter(|c| !c.verdict.is_sound())
                    .map(|c| c.name.clone())
                    .collect(),
            }
        });
        let cached = !computed;
        let metrics = &self.shard_of(id).metrics;
        if cached {
            metrics.validate_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            metrics.validate_misses.fetch_add(1, Ordering::Relaxed);
        }
        metrics.validate_ns.fetch_add(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        Ok(Verdict {
            sound: summary.sound,
            version: index,
            cached,
            unsound: summary.unsound.clone(),
        })
    }

    /// Corrects the current view with `strategy`. When the view was unsound,
    /// the corrected view is appended as a new version and becomes current;
    /// observed per-composite timings are recorded in the estimation
    /// registry. The expensive correction runs outside the shard lock.
    ///
    /// # Errors
    /// Reports unknown workflows and corrector failures.
    pub fn correct(&self, id: WorkflowId, strategy: Strategy) -> Result<Corrected, ServiceError> {
        let (spec, stored, index) = self.snapshot(id, None)?;
        let corrector = strategy.corrector();
        let (corrected, report) = correct_view(&spec, &stored.view, corrector.as_ref())?;
        for correction in &report.corrections {
            if let Ok(original) = stored.view.composite(correction.original) {
                let class = WorkloadClass::classify(&spec, original.members());
                self.registry.record(
                    class,
                    CorrectionSample {
                        strategy,
                        elapsed: correction.elapsed,
                        // observed quality is unknown without running the
                        // exact corrector; record the neutral 1.0
                        quality: 1.0,
                    },
                );
            }
        }
        if report.was_already_sound() {
            return Ok(Corrected {
                version: index,
                composites_before: report.composites_before,
                composites_after: report.composites_after,
                payload: write_text_format(&spec, Some(&stored.view)),
            });
        }
        let payload = write_text_format(&spec, Some(&corrected));
        let new_view = StoredView::new(corrected);
        let shard = self.shard_of(id);
        let mut entries = shard.entries.write();
        let entry = entries
            .get_mut(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.current != index {
            // a concurrent correction already replaced the version we
            // corrected; adopt the winner instead of appending a duplicate
            let winner = &entry.views[entry.current];
            return Ok(Corrected {
                version: entry.current,
                composites_before: report.composites_before,
                composites_after: winner.view.composite_count(),
                payload: write_text_format(&spec, Some(&winner.view)),
            });
        }
        entry.views.push(new_view);
        entry.current = entry.views.len() - 1;
        Ok(Corrected {
            version: entry.current,
            composites_before: report.composites_before,
            composites_after: report.composites_after,
            payload,
        })
    }

    /// Answers a view-level provenance query for the named task through the
    /// workflow's current view, returning the provenance task names in
    /// deterministic (task-id) order.
    ///
    /// Served off the per-version [`ViewProvenanceIndex`]: the induced view
    /// graph and its reachability matrix are built once per view version
    /// (outside the shard lock) and every query afterwards is row lookups —
    /// no per-request graph construction or traversal.
    ///
    /// # Errors
    /// Reports unknown workflows and task names.
    pub fn provenance(&self, id: WorkflowId, subject: &str) -> Result<Vec<String>, ServiceError> {
        let (spec, stored, _) = self.snapshot(id, None)?;
        let task = spec
            .task_by_name(subject)
            .ok_or_else(|| ServiceError::UnknownTask(subject.to_owned()))?;
        let index = stored
            .provenance
            .get_or_init(|| ViewProvenanceIndex::new(&spec, &stored.view));
        let answer = index.provenance(&stored.view, task);
        Ok(answer
            .tasks
            .iter()
            .filter_map(|&t| spec.task(t).ok().map(|task| task.name.clone()))
            .collect())
    }

    /// Snapshot of the per-shard serving counters.
    #[must_use]
    pub fn stats(&self) -> StatsReport {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardStat {
                shard: index,
                workflows: shard.entries.read().len(),
                validate_hits: shard.metrics.validate_hits.load(Ordering::Relaxed),
                validate_misses: shard.metrics.validate_misses.load(Ordering::Relaxed),
                validate_ns: shard.metrics.validate_ns.load(Ordering::Relaxed),
                requests: shard.metrics.requests.load(Ordering::Relaxed),
            })
            .collect();
        StatsReport {
            shards,
            registry_samples: self.registry.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_repo::figure1;

    #[test]
    fn register_validate_and_cache() {
        let store = WorkflowStore::new(4);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let first = store.validate(id, None).unwrap();
        assert!(!first.sound);
        assert!(!first.cached);
        assert_eq!(first.unsound, vec!["Curate & align (16)".to_owned()]);
        let second = store.validate(id, None).unwrap();
        assert!(second.cached);
        assert_eq!(second.unsound, first.unsound);
        let stats = store.stats();
        assert_eq!(stats.validate_hits(), 1);
        assert_eq!(stats.validate_misses(), 1);
        assert_eq!(stats.workflows(), 1);
    }

    #[test]
    fn correction_appends_a_sound_version() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let corrected = store.correct(id, Strategy::Strong).unwrap();
        assert_eq!(corrected.version, 1);
        assert_eq!(corrected.composites_before, 7);
        assert_eq!(corrected.composites_after, 8);
        // the current view is now the corrected one and validates sound...
        let verdict = store.validate(id, None).unwrap();
        assert!(verdict.sound);
        assert_eq!(verdict.version, 1);
        // ...while the original version is still queryable and unsound
        let original = store.validate(id, Some(0)).unwrap();
        assert!(!original.sound);
        // the correction fed the estimation registry
        assert_eq!(store.registry().len(), 1);
        // correcting a sound view is a no-op that keeps the version
        let again = store.correct(id, Strategy::Strong).unwrap();
        assert_eq!(again.version, 1);
        assert_eq!(again.composites_before, again.composites_after);
    }

    #[test]
    fn provenance_is_exact_through_the_corrected_view() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec.clone(), Some(fixture.view));
        store.correct(id, Strategy::Strong).unwrap();
        let names = store.provenance(id, "Format alignment").unwrap();
        assert!(names.contains(&"Create alignment".to_owned()));
        assert!(names.contains(&"Extract sequences".to_owned()));
        assert!(!names.contains(&"Curate annotations".to_owned()));
        assert!(matches!(
            store.provenance(id, "No such task"),
            Err(ServiceError::UnknownTask(_))
        ));
    }

    #[test]
    fn repeated_provenance_queries_reuse_the_cached_index() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec.clone(), Some(fixture.view.clone()));
        let first = store.provenance(id, "Format alignment").unwrap();
        // second query (different subject) rides the already-built index
        let other = store.provenance(id, "Display tree").unwrap();
        assert!(other.len() > first.len());
        // answers are stable across repeated queries
        assert_eq!(store.provenance(id, "Format alignment").unwrap(), first);
        // the cached answers agree with a fresh traversal
        let task = fixture.spec.task_by_name("Format alignment").unwrap();
        let walked = wolves_provenance::view_level_provenance(&fixture.spec, &fixture.view, task);
        let walked_names: Vec<String> = walked
            .tasks
            .iter()
            .filter_map(|&t| fixture.spec.task(t).ok().map(|task| task.name.clone()))
            .collect();
        assert_eq!(first, walked_names);
    }

    #[test]
    fn text_registration_and_errors() {
        let store = WorkflowStore::new(3);
        let fixture = figure1();
        let payload = write_text_format(&fixture.spec, Some(&fixture.view));
        let id = store.register_text(&payload).unwrap();
        assert!(!store.validate(id, None).unwrap().sound);
        assert!(matches!(
            store.register_text("garbage\tline"),
            Err(ServiceError::Parse(_))
        ));
        assert!(matches!(
            store.validate(WorkflowId(999), None),
            Err(ServiceError::UnknownWorkflow(_))
        ));
        assert!(matches!(
            store.validate(id, Some(5)),
            Err(ServiceError::UnknownView(_, 5))
        ));
        let bare = store.register(figure1().spec, None);
        assert!(matches!(
            store.validate(bare, None),
            Err(ServiceError::NoView(_))
        ));
    }

    #[test]
    fn ids_spread_over_shards() {
        let store = WorkflowStore::new(4);
        for _ in 0..32 {
            let fixture = figure1();
            store.register(fixture.spec, Some(fixture.view));
        }
        let stats = store.stats();
        assert_eq!(stats.workflows(), 32);
        let populated = stats.shards.iter().filter(|s| s.workflows > 0).count();
        assert!(populated >= 2, "expected ≥2 shards in use, got {populated}");
    }
}
