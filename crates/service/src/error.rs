//! Error type shared by the store, server and client.

use wolves_core::error::CoreError;
use wolves_moml::MomlError;

use crate::store::WorkflowId;

/// Errors produced while serving or issuing requests.
#[derive(Debug)]
pub enum ServiceError {
    /// No workflow is registered under the given id.
    UnknownWorkflow(WorkflowId),
    /// The workflow exists but has no view at the requested version.
    UnknownView(WorkflowId, usize),
    /// The workflow has no view at all (registered without one).
    NoView(WorkflowId),
    /// A task name mentioned in a request does not exist in the workflow.
    UnknownTask(String),
    /// The request named a corrector strategy that does not exist.
    UnknownStrategy(String),
    /// A request or response frame could not be parsed.
    Protocol(String),
    /// The registered payload could not be parsed as a workflow.
    Parse(String),
    /// Correction failed inside `wolves-core`.
    Correction(String),
    /// A mutation request could not be applied to the workflow.
    Mutation(String),
    /// A composite name mentioned in a request does not exist in the
    /// workflow's current view.
    UnknownCompositeName(String),
    /// An I/O error on the underlying connection.
    Io(std::io::Error),
    /// The server answered a request with an error message.
    Remote(String),
    /// The storage backend failed to persist a record or snapshot. The
    /// in-memory state may be ahead of the durable state until the next
    /// successful snapshot.
    Persistence(String),
    /// A durable store could not be recovered (corrupt snapshot, corrupt
    /// mid-log record, replay divergence, shard-count mismatch).
    Recovery(String),
    /// A wire payload declared a schema version this build does not speak
    /// (e.g. a `stats` shard line from an incompatible peer).
    SchemaVersion {
        /// The schema version this build speaks.
        expected: &'static str,
        /// The schema version the payload declared.
        found: String,
    },
    /// A watch subscription fell behind the event stream and was dropped
    /// (slow consumer): the gap-free tail is gone, so the subscriber must
    /// resync via `export` (or a `resync`-mode watch) and re-subscribe.
    Lagged,
    /// The shard holding the workflow is in read-only degraded mode after a
    /// double storage failure (the WAL append failed *and* the rescue
    /// snapshot failed). Reads keep serving from the last published state;
    /// mutations are refused until a `heal` succeeds.
    Degraded {
        /// Index of the degraded shard.
        shard: usize,
        /// The storage failure that degraded the shard.
        reason: String,
    },
    /// The server shed the request because its accept backlog passed the
    /// configured bound. Transient: back off and retry.
    Overloaded,
    /// A compare-and-set mutation named an expected epoch that is no longer
    /// the workflow's current one — either a concurrent editor won, or a
    /// retried mutation already applied. Nothing was changed.
    EpochConflict {
        /// The epoch the request expected.
        expected: u64,
        /// The workflow's actual current epoch.
        actual: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownWorkflow(id) => write!(f, "unknown workflow {id}"),
            ServiceError::UnknownView(id, version) => {
                write!(f, "workflow {id} has no view version {version}")
            }
            ServiceError::NoView(id) => write!(f, "workflow {id} was registered without a view"),
            ServiceError::UnknownTask(name) => write!(f, "unknown task '{name}'"),
            ServiceError::UnknownStrategy(name) => write!(f, "unknown strategy '{name}'"),
            ServiceError::Protocol(message) => write!(f, "protocol error: {message}"),
            ServiceError::Parse(message) => write!(f, "parse error: {message}"),
            ServiceError::Correction(message) => write!(f, "correction failed: {message}"),
            ServiceError::Mutation(message) => write!(f, "mutation failed: {message}"),
            ServiceError::UnknownCompositeName(name) => {
                write!(f, "unknown composite task '{name}'")
            }
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Remote(message) => write!(f, "server error: {message}"),
            ServiceError::Persistence(message) => write!(f, "persistence error: {message}"),
            ServiceError::Recovery(message) => write!(f, "recovery error: {message}"),
            ServiceError::SchemaVersion { expected, found } => write!(
                f,
                "schema version mismatch: this build speaks '{expected}' but the peer sent \
                 '{found}'; upgrade whichever side is older"
            ),
            ServiceError::Lagged => write!(
                f,
                "watch subscription lagged behind the event stream and was dropped; \
                 resync via export and re-subscribe"
            ),
            ServiceError::Degraded { shard, reason } => write!(
                f,
                "shard {shard} is degraded (read-only) after a storage failure: {reason}; \
                 reads still serve, heal the shard to re-open writes"
            ),
            ServiceError::Overloaded => write!(
                f,
                "server overloaded: the request was shed before processing; back off and retry"
            ),
            ServiceError::EpochConflict { expected, actual } => write!(
                f,
                "epoch conflict: expected {expected} but the workflow is at {actual}; \
                 nothing was changed"
            ),
        }
    }
}

impl ServiceError {
    /// The error's stable wire tag — the first field of [`Self::to_wire`],
    /// also used as the `kind` label of the `wolves_errors_total` counters.
    #[must_use]
    pub fn wire_kind(&self) -> &'static str {
        match self {
            ServiceError::UnknownWorkflow(_) => "unknown-workflow",
            ServiceError::UnknownView(_, _) => "unknown-view",
            ServiceError::NoView(_) => "no-view",
            ServiceError::UnknownTask(_) => "unknown-task",
            ServiceError::UnknownStrategy(_) => "unknown-strategy",
            ServiceError::Protocol(_) => "protocol",
            ServiceError::Parse(_) => "parse",
            ServiceError::Correction(_) => "correction",
            ServiceError::Mutation(_) => "mutation",
            ServiceError::UnknownCompositeName(_) => "unknown-composite",
            ServiceError::Io(_) => "io",
            ServiceError::Remote(_) => "remote",
            ServiceError::Persistence(_) => "persistence",
            ServiceError::Recovery(_) => "recovery",
            ServiceError::SchemaVersion { .. } => "schema-version",
            ServiceError::Lagged => "lagged",
            ServiceError::Degraded { .. } => "degraded",
            ServiceError::Overloaded => "overloaded",
            ServiceError::EpochConflict { .. } => "epoch-conflict",
        }
    }

    /// `true` for errors a client may transparently retry after a backoff:
    /// the request was refused before (or without) taking effect, and the
    /// condition is expected to clear — shed load, a degraded shard that an
    /// operator can heal, or a broken connection.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded
                | ServiceError::Degraded { .. }
                | ServiceError::Io(_)
                | ServiceError::Persistence(_)
        )
    }

    /// Serialises the error as a typed wire tail: `<kind>` followed by
    /// TAB-separated fields (free-text fields have tabs/newlines replaced by
    /// spaces). [`Self::from_wire`] parses it back into the same variant.
    #[must_use]
    pub fn to_wire(&self) -> String {
        fn clean(text: &str) -> String {
            text.replace(['\t', '\n'], " ")
        }
        let kind = self.wire_kind();
        match self {
            ServiceError::UnknownWorkflow(id) => format!("{kind}\t{id}"),
            ServiceError::UnknownView(id, version) => format!("{kind}\t{id}\t{version}"),
            ServiceError::NoView(id) => format!("{kind}\t{id}"),
            ServiceError::UnknownTask(text)
            | ServiceError::UnknownStrategy(text)
            | ServiceError::Protocol(text)
            | ServiceError::Parse(text)
            | ServiceError::Correction(text)
            | ServiceError::Mutation(text)
            | ServiceError::UnknownCompositeName(text)
            | ServiceError::Remote(text)
            | ServiceError::Persistence(text)
            | ServiceError::Recovery(text) => format!("{kind}\t{}", clean(text)),
            ServiceError::Io(e) => format!("{kind}\t{}", clean(&e.to_string())),
            ServiceError::SchemaVersion { expected, found } => {
                format!("{kind}\t{expected}\t{}", clean(found))
            }
            ServiceError::Lagged | ServiceError::Overloaded => kind.to_owned(),
            ServiceError::Degraded { shard, reason } => {
                format!("{kind}\t{shard}\t{}", clean(reason))
            }
            ServiceError::EpochConflict { expected, actual } => {
                format!("{kind}\t{expected}\t{actual}")
            }
        }
    }

    /// Parses a wire tail produced by [`Self::to_wire`] back into a typed
    /// error. Unknown kinds and malformed fields fall back to
    /// [`ServiceError::Remote`] carrying the raw text — an older client
    /// talking to a newer server still reports *something* legible.
    #[must_use]
    pub fn from_wire(text: &str) -> Self {
        use crate::store::WorkflowId;
        fn parse<T: std::str::FromStr>(field: Option<&str>) -> Option<T> {
            field.and_then(|f| f.parse().ok())
        }
        let mut fields = text.splitn(3, '\t');
        let kind = fields.next().unwrap_or_default();
        let (a, b) = (fields.next(), fields.next());
        let rest = || -> String {
            match (a, b) {
                (Some(a), Some(b)) => format!("{a}\t{b}"),
                (Some(a), None) => a.to_owned(),
                _ => String::new(),
            }
        };
        let fallback = || ServiceError::Remote(text.to_owned());
        match kind {
            "unknown-workflow" => parse(a)
                .map(|id| ServiceError::UnknownWorkflow(WorkflowId(id)))
                .unwrap_or_else(fallback),
            "unknown-view" => match (parse(a), parse(b)) {
                (Some(id), Some(version)) => ServiceError::UnknownView(WorkflowId(id), version),
                _ => fallback(),
            },
            "no-view" => parse(a)
                .map(|id| ServiceError::NoView(WorkflowId(id)))
                .unwrap_or_else(fallback),
            "unknown-task" => ServiceError::UnknownTask(rest()),
            "unknown-strategy" => ServiceError::UnknownStrategy(rest()),
            "protocol" => ServiceError::Protocol(rest()),
            "parse" => ServiceError::Parse(rest()),
            "correction" => ServiceError::Correction(rest()),
            "mutation" => ServiceError::Mutation(rest()),
            "unknown-composite" => ServiceError::UnknownCompositeName(rest()),
            "io" => ServiceError::Io(std::io::Error::other(rest())),
            "remote" => ServiceError::Remote(rest()),
            "persistence" => ServiceError::Persistence(rest()),
            "recovery" => ServiceError::Recovery(rest()),
            "schema-version" => match (a, b) {
                // `expected` is a &'static str: only the version this build
                // itself speaks can be re-interned — anything else means the
                // peer is from a different build, which is Remote territory
                (Some(expected), Some(found)) if expected == crate::proto::STATS_SCHEMA_VERSION => {
                    ServiceError::SchemaVersion {
                        expected: crate::proto::STATS_SCHEMA_VERSION,
                        found: found.to_owned(),
                    }
                }
                _ => fallback(),
            },
            "lagged" => ServiceError::Lagged,
            "degraded" => match (parse(a), b) {
                (Some(shard), Some(reason)) => ServiceError::Degraded {
                    shard,
                    reason: reason.to_owned(),
                },
                _ => fallback(),
            },
            "overloaded" => ServiceError::Overloaded,
            "epoch-conflict" => match (parse(a), parse(b)) {
                (Some(expected), Some(actual)) => ServiceError::EpochConflict { expected, actual },
                _ => fallback(),
            },
            _ => fallback(),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<MomlError> for ServiceError {
    fn from(e: MomlError) -> Self {
        ServiceError::Parse(e.to_string())
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Correction(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::WorkflowId;

    /// One witness per variant. The `match` below forces this list to stay
    /// exhaustive: adding a `ServiceError` variant without a witness (and
    /// therefore without wire coverage) breaks the build here.
    fn witnesses() -> Vec<ServiceError> {
        let all = vec![
            ServiceError::UnknownWorkflow(WorkflowId(7)),
            ServiceError::UnknownView(WorkflowId(7), 3),
            ServiceError::NoView(WorkflowId(9)),
            ServiceError::UnknownTask("Split entries".to_owned()),
            ServiceError::UnknownStrategy("bogus".to_owned()),
            ServiceError::Protocol("unknown verb 'frobnicate'".to_owned()),
            ServiceError::Parse("line 3: missing field".to_owned()),
            ServiceError::Correction("no sound refinement".to_owned()),
            ServiceError::Mutation("edge would close a cycle".to_owned()),
            ServiceError::UnknownCompositeName("Curate & align (16)".to_owned()),
            ServiceError::Io(std::io::Error::other("connection reset")),
            ServiceError::Remote("free-form server text".to_owned()),
            ServiceError::Persistence("cannot append a WAL record".to_owned()),
            ServiceError::Recovery("snapshot checksum mismatch".to_owned()),
            ServiceError::SchemaVersion {
                expected: crate::proto::STATS_SCHEMA_VERSION,
                found: "v9".to_owned(),
            },
            ServiceError::Lagged,
            ServiceError::Degraded {
                shard: 2,
                reason: "disk full".to_owned(),
            },
            ServiceError::Overloaded,
            ServiceError::EpochConflict {
                expected: 4,
                actual: 6,
            },
        ];
        for error in &all {
            match error {
                ServiceError::UnknownWorkflow(_)
                | ServiceError::UnknownView(_, _)
                | ServiceError::NoView(_)
                | ServiceError::UnknownTask(_)
                | ServiceError::UnknownStrategy(_)
                | ServiceError::Protocol(_)
                | ServiceError::Parse(_)
                | ServiceError::Correction(_)
                | ServiceError::Mutation(_)
                | ServiceError::UnknownCompositeName(_)
                | ServiceError::Io(_)
                | ServiceError::Remote(_)
                | ServiceError::Persistence(_)
                | ServiceError::Recovery(_)
                | ServiceError::SchemaVersion { .. }
                | ServiceError::Lagged
                | ServiceError::Degraded { .. }
                | ServiceError::Overloaded
                | ServiceError::EpochConflict { .. } => {}
            }
        }
        all
    }

    #[test]
    fn every_variant_round_trips_through_the_wire_encoding() {
        let all = witnesses();
        let mut kinds = std::collections::BTreeSet::new();
        for error in &all {
            let wire = error.to_wire();
            assert!(kinds.insert(error.wire_kind()), "duplicate witness kind");
            assert_eq!(
                wire.split('\t').next().unwrap(),
                error.wire_kind(),
                "the wire tail must lead with the kind tag"
            );
            let parsed = ServiceError::from_wire(&wire);
            assert_eq!(
                std::mem::discriminant(&parsed),
                std::mem::discriminant(error),
                "'{wire}' decoded to the wrong variant: {parsed:?}"
            );
            assert_eq!(
                parsed.to_string(),
                error.to_string(),
                "'{wire}' did not reproduce the message"
            );
            assert_eq!(parsed.wire_kind(), error.wire_kind());
        }
        assert_eq!(kinds.len(), all.len());
    }

    #[test]
    fn embedded_tabs_and_newlines_cannot_break_the_framing() {
        let error = ServiceError::Mutation("line one\nline two\ttabbed".to_owned());
        let wire = error.to_wire();
        assert!(!wire.contains('\n'));
        assert_eq!(wire.matches('\t').count(), 1, "only the field separator");
        match ServiceError::from_wire(&wire) {
            ServiceError::Mutation(text) => assert_eq!(text, "line one line two tabbed"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_kinds_fall_back_to_remote() {
        let parsed = ServiceError::from_wire("quantum-flux\t42");
        assert!(matches!(&parsed, ServiceError::Remote(text) if text == "quantum-flux\t42"));
        // malformed fields of a known kind fall back too, keeping the text
        assert!(matches!(
            ServiceError::from_wire("unknown-workflow\tnot-a-number"),
            ServiceError::Remote(_)
        ));
        // a schema-version tail from a build speaking a different version
        // cannot re-intern the static token
        assert!(matches!(
            ServiceError::from_wire("schema-version\tv999\tv1"),
            ServiceError::Remote(_)
        ));
    }

    #[test]
    fn transient_classification_covers_retryable_kinds() {
        assert!(ServiceError::Overloaded.is_transient());
        assert!(ServiceError::Degraded {
            shard: 0,
            reason: String::new()
        }
        .is_transient());
        assert!(ServiceError::Io(std::io::Error::other("reset")).is_transient());
        assert!(!ServiceError::Lagged.is_transient());
        assert!(!ServiceError::EpochConflict {
            expected: 1,
            actual: 2
        }
        .is_transient());
        assert!(!ServiceError::UnknownWorkflow(WorkflowId(1)).is_transient());
    }
}
