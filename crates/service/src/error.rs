//! Error type shared by the store, server and client.

use wolves_core::error::CoreError;
use wolves_moml::MomlError;

use crate::store::WorkflowId;

/// Errors produced while serving or issuing requests.
#[derive(Debug)]
pub enum ServiceError {
    /// No workflow is registered under the given id.
    UnknownWorkflow(WorkflowId),
    /// The workflow exists but has no view at the requested version.
    UnknownView(WorkflowId, usize),
    /// The workflow has no view at all (registered without one).
    NoView(WorkflowId),
    /// A task name mentioned in a request does not exist in the workflow.
    UnknownTask(String),
    /// The request named a corrector strategy that does not exist.
    UnknownStrategy(String),
    /// A request or response frame could not be parsed.
    Protocol(String),
    /// The registered payload could not be parsed as a workflow.
    Parse(String),
    /// Correction failed inside `wolves-core`.
    Correction(String),
    /// A mutation request could not be applied to the workflow.
    Mutation(String),
    /// A composite name mentioned in a request does not exist in the
    /// workflow's current view.
    UnknownCompositeName(String),
    /// An I/O error on the underlying connection.
    Io(std::io::Error),
    /// The server answered a request with an error message.
    Remote(String),
    /// The storage backend failed to persist a record or snapshot. The
    /// in-memory state may be ahead of the durable state until the next
    /// successful snapshot.
    Persistence(String),
    /// A durable store could not be recovered (corrupt snapshot, corrupt
    /// mid-log record, replay divergence, shard-count mismatch).
    Recovery(String),
    /// A wire payload declared a schema version this build does not speak
    /// (e.g. a `stats` shard line from an incompatible peer).
    SchemaVersion {
        /// The schema version this build speaks.
        expected: &'static str,
        /// The schema version the payload declared.
        found: String,
    },
    /// A watch subscription fell behind the event stream and was dropped
    /// (slow consumer): the gap-free tail is gone, so the subscriber must
    /// resync via `export` (or a `resync`-mode watch) and re-subscribe.
    Lagged,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownWorkflow(id) => write!(f, "unknown workflow {id}"),
            ServiceError::UnknownView(id, version) => {
                write!(f, "workflow {id} has no view version {version}")
            }
            ServiceError::NoView(id) => write!(f, "workflow {id} was registered without a view"),
            ServiceError::UnknownTask(name) => write!(f, "unknown task '{name}'"),
            ServiceError::UnknownStrategy(name) => write!(f, "unknown strategy '{name}'"),
            ServiceError::Protocol(message) => write!(f, "protocol error: {message}"),
            ServiceError::Parse(message) => write!(f, "parse error: {message}"),
            ServiceError::Correction(message) => write!(f, "correction failed: {message}"),
            ServiceError::Mutation(message) => write!(f, "mutation failed: {message}"),
            ServiceError::UnknownCompositeName(name) => {
                write!(f, "unknown composite task '{name}'")
            }
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Remote(message) => write!(f, "server error: {message}"),
            ServiceError::Persistence(message) => write!(f, "persistence error: {message}"),
            ServiceError::Recovery(message) => write!(f, "recovery error: {message}"),
            ServiceError::SchemaVersion { expected, found } => write!(
                f,
                "schema version mismatch: this build speaks '{expected}' but the peer sent \
                 '{found}'; upgrade whichever side is older"
            ),
            ServiceError::Lagged => write!(
                f,
                "watch subscription lagged behind the event stream and was dropped; \
                 resync via export and re-subscribe"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<MomlError> for ServiceError {
    fn from(e: MomlError) -> Self {
        ServiceError::Parse(e.to_string())
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Correction(e.to_string())
    }
}
