//! Client library: a typed connection to a running server, plus the batch
//! driver used by the CLI and the throughput benchmark.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use wolves_core::correct::Strategy;
use wolves_moml::write_text_format;
use wolves_workflow::{WorkflowSpec, WorkflowView};

use crate::error::ServiceError;
use crate::proto::{
    encode_frame, read_frame, write_frame, Corrected, MutateOp, Mutated, Request, Response,
    StatsReport, Verdict, WatchEvent, WatchMode, Watching,
};
use crate::store::WorkflowId;

/// A persistent connection to a `wolves-service` server. One request is in
/// flight at a time; responses arrive in request order.
#[derive(Debug)]
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connects to a server.
    ///
    /// # Errors
    /// Reports connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_with(addr, None)
    }

    /// [`ServiceClient::connect`] with a socket read/write timeout: a
    /// request whose response does not arrive within `timeout` fails with
    /// an I/O timeout instead of blocking forever. `None` keeps the
    /// historical blocking behaviour.
    ///
    /// # Errors
    /// Reports connection failures.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        // see the server side: Nagle + delayed ACKs would add ~40ms to
        // every request/response exchange
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServiceClient {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads its response. Server-side failures
    /// arrive as typed `err` frames and are decoded back into the
    /// [`ServiceError`] variant the server raised (unknown kinds fall back
    /// to [`ServiceError::Remote`]).
    ///
    /// # Errors
    /// Reports I/O failures, protocol violations and server-side errors.
    pub fn call(&mut self, request: &Request) -> Result<Response, ServiceError> {
        write_frame(&mut self.writer, &request.to_lines())?;
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ServiceError::Protocol("server closed the connection".to_owned()))?;
        let response = Response::from_lines(&frame)?;
        if let Response::Error(message) = response {
            return Err(ServiceError::from_wire(&message));
        }
        Ok(response)
    }

    /// Issues `requests` pipelined: every frame is coalesced into **one**
    /// socket write, then the responses are drained in request order — N
    /// round-trip latencies collapse into one. Per-request failures land in
    /// their slot (the connection stays usable); only transport failures
    /// abort the whole call, after which the connection's request/response
    /// pairing is unknowable and it should be dropped.
    ///
    /// Connection-control requests (`watch`, `unwatch`, `shutdown`) do not
    /// belong in a pipeline: a `shutdown` mid-pipeline stops the server
    /// before later responses are written.
    ///
    /// # Errors
    /// Reports I/O failures and protocol violations.
    #[allow(clippy::type_complexity)]
    pub fn pipeline(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, ServiceError>>, ServiceError> {
        let mut wire = String::new();
        for request in requests {
            encode_frame(&mut wire, &request.to_lines());
        }
        std::io::Write::write_all(&mut self.writer, wire.as_bytes())?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
                ServiceError::Protocol("server closed the connection mid-pipeline".to_owned())
            })?;
            responses.push(match Response::from_lines(&frame)? {
                Response::Error(message) => Err(ServiceError::from_wire(&message)),
                other => Ok(other),
            });
        }
        Ok(responses)
    }

    /// Issues `requests` as one server-side `batch` frame: one request
    /// frame, one response frame, one round trip — the server answers the
    /// sub-requests in order and per-request failures land in their slot.
    /// Unlike [`ServiceClient::pipeline`] the coalescing survives proxies
    /// that serialise on frame boundaries, at the cost of buffering the
    /// whole batch response server-side.
    ///
    /// # Errors
    /// Reports I/O failures and protocol violations (including a response
    /// batch of the wrong length).
    #[allow(clippy::type_complexity)]
    pub fn batch(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<Vec<Result<Response, ServiceError>>, ServiceError> {
        let expected = requests.len();
        match self.call(&Request::Batch(requests))? {
            Response::Batch(responses) if responses.len() == expected => Ok(responses
                .into_iter()
                .map(|response| match response {
                    Response::Error(message) => Err(ServiceError::from_wire(&message)),
                    other => Ok(other),
                })
                .collect()),
            Response::Batch(responses) => Err(ServiceError::Protocol(format!(
                "batch of {expected} answered with {} responses",
                responses.len()
            ))),
            other => Err(unexpected("batch", &other)),
        }
    }

    /// Registers a workflow from a native text-format payload.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn register_text(&mut self, payload: &str) -> Result<WorkflowId, ServiceError> {
        match self.call(&Request::Register {
            payload: payload.to_owned(),
        })? {
            Response::Registered(id) => Ok(id),
            other => Err(unexpected("registered", &other)),
        }
    }

    /// Registers an in-memory workflow and view.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn register(
        &mut self,
        spec: &WorkflowSpec,
        view: Option<&WorkflowView>,
    ) -> Result<WorkflowId, ServiceError> {
        self.register_text(&write_text_format(spec, view))
    }

    /// Validates a view version (`None` = current).
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn validate(
        &mut self,
        workflow: WorkflowId,
        version: Option<usize>,
    ) -> Result<Verdict, ServiceError> {
        match self.call(&Request::Validate { workflow, version })? {
            Response::Verdict(verdict) => Ok(verdict),
            other => Err(unexpected("verdict", &other)),
        }
    }

    /// Corrects the current view with `strategy`.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn correct(
        &mut self,
        workflow: WorkflowId,
        strategy: Strategy,
    ) -> Result<Corrected, ServiceError> {
        match self.call(&Request::Correct { workflow, strategy })? {
            Response::Corrected(corrected) => Ok(corrected),
            other => Err(unexpected("corrected", &other)),
        }
    }

    /// Queries view-level provenance of the named task.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn provenance(
        &mut self,
        workflow: WorkflowId,
        subject: &str,
    ) -> Result<Vec<String>, ServiceError> {
        match self.call(&Request::Provenance {
            workflow,
            subject: subject.to_owned(),
        })? {
            Response::Provenance(tasks) => Ok(tasks),
            other => Err(unexpected("provenance", &other)),
        }
    }

    /// Applies one mutation to a registered workflow (edit in place — no
    /// re-upload; caches covering unaffected composites survive).
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn mutate(&mut self, workflow: WorkflowId, op: MutateOp) -> Result<Mutated, ServiceError> {
        self.mutate_cas(workflow, op, None)
    }

    /// [`ServiceClient::mutate`] with an optional expected-epoch CAS guard:
    /// with `Some(epoch)` the server applies the edit only if the workflow
    /// is still at that mutation epoch, making retries idempotent (see
    /// [`RequestPolicy::mutate`]).
    ///
    /// # Errors
    /// Propagates transport and server errors, including
    /// [`ServiceError::EpochConflict`] on a stale guard.
    pub fn mutate_cas(
        &mut self,
        workflow: WorkflowId,
        op: MutateOp,
        expect: Option<u64>,
    ) -> Result<Mutated, ServiceError> {
        match self.call(&Request::Mutate {
            workflow,
            op,
            expect,
        })? {
            Response::Mutated(mutated) => Ok(mutated),
            other => Err(unexpected("mutated", &other)),
        }
    }

    /// Fetches a workflow's change cursor `(seq, epoch)` — the CAS base
    /// for an idempotent mutate.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn epoch(&mut self, workflow: WorkflowId) -> Result<(u64, u64), ServiceError> {
        match self.call(&Request::Epoch { workflow })? {
            Response::Epoch { seq, epoch } => Ok((seq, epoch)),
            other => Err(unexpected("epoch", &other)),
        }
    }

    /// Asks the server to heal its degraded shards (retry the storage
    /// backend and re-open writes). Returns `(healed, still_degraded)`.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn heal(&mut self) -> Result<(usize, usize), ServiceError> {
        match self.call(&Request::Heal)? {
            Response::Healed {
                healed,
                still_degraded,
            } => Ok((healed, still_degraded)),
            other => Err(unexpected("healed", &other)),
        }
    }

    /// Downloads a workflow's current spec + view in registrable textfmt —
    /// resyncs a client after server-side mutations and corrections.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn export(&mut self, workflow: WorkflowId) -> Result<String, ServiceError> {
        match self.call(&Request::Export { workflow })? {
            Response::Exported(payload) => Ok(payload),
            other => Err(unexpected("exported", &other)),
        }
    }

    /// Forces a snapshot of every shard (durable servers compact their
    /// write-ahead logs). Returns the number of shards snapshotted.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn snapshot(&mut self) -> Result<usize, ServiceError> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshotted(shards) => Ok(shards),
            other => Err(unexpected("snapshotted", &other)),
        }
    }

    /// Fetches the per-shard serving statistics.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn stats(&mut self) -> Result<StatsReport, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetches the server's telemetry as Prometheus-style text exposition:
    /// per-verb and per-commit-stage latency histograms, serving counters,
    /// watch gauges and WAL observation.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn metrics(&mut self) -> Result<String, ServiceError> {
        match self.call(&Request::Metrics { slow: false })? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Fetches the server's slow-request dump: the worst-N requests with
    /// their commit-stage breakdowns, worst first.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn metrics_slow(&mut self) -> Result<String, ServiceError> {
        match self.call(&Request::Metrics { slow: true })? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// Switches the connection into subscription mode: the server pushes
    /// one [`WatchEvent`] frame per committed change of `workflow` until
    /// [`WatchStream::stop`] (which hands the connection back) or drop.
    /// [`WatchMode::Resync`] makes the acknowledgement carry a full
    /// `export` payload consistent with the acknowledged sequence number —
    /// an atomic export-then-tail.
    ///
    /// # Errors
    /// Propagates transport and server errors (the connection is consumed
    /// either way; reconnect on failure).
    pub fn watch(
        mut self,
        workflow: WorkflowId,
        mode: WatchMode,
    ) -> Result<WatchStream, ServiceError> {
        match self.call(&Request::Watch { workflow, mode })? {
            Response::Watching(ack) => Ok(WatchStream {
                reader: self.reader,
                writer: self.writer,
                ack,
            }),
            other => Err(unexpected("watching", &other)),
        }
    }
}

/// A connection in subscription mode (see [`ServiceClient::watch`]).
#[derive(Debug)]
pub struct WatchStream {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    ack: Watching,
}

impl WatchStream {
    /// The subscription acknowledgement: base sequence number, epoch, and
    /// the resync payload when the watch was opened in
    /// [`WatchMode::Resync`].
    #[must_use]
    pub fn ack(&self) -> &Watching {
        &self.ack
    }

    /// Blocks until the server pushes the next event. A
    /// [`WatchEvent::Resync`] means the gap-free tail ended (slow consumer
    /// or an unservable `from` cursor): re-export and re-subscribe.
    ///
    /// # Errors
    /// Reports transport failures and a server-closed connection.
    pub fn next_event(&mut self) -> Result<WatchEvent, ServiceError> {
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ServiceError::Protocol("server closed the watch stream".to_owned()))?;
        WatchEvent::from_lines(&frame)
    }

    /// Ends the subscription and hands the connection back as a
    /// [`ServiceClient`]. Events already in flight are drained and
    /// discarded (the server acknowledges the unwatch after them).
    ///
    /// # Errors
    /// Reports transport failures and protocol violations.
    pub fn stop(mut self) -> Result<ServiceClient, ServiceError> {
        write_frame(&mut self.writer, &Request::Unwatch.to_lines())?;
        loop {
            let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
                ServiceError::Protocol("server closed the watch stream".to_owned())
            })?;
            if frame
                .first()
                .is_some_and(|line| line.starts_with("event\t"))
            {
                continue; // in-flight event racing the unwatch
            }
            return match Response::from_lines(&frame)? {
                Response::Unwatched => Ok(ServiceClient {
                    reader: self.reader,
                    writer: self.writer,
                }),
                other => Err(unexpected("unwatched", &other)),
            };
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServiceError {
    ServiceError::Protocol(format!("expected a {wanted} response, got {got:?}"))
}

/// Outcome of a policy-driven idempotent mutate
/// ([`RequestPolicy::mutate`]).
#[derive(Debug, Clone)]
pub enum MutateOutcome {
    /// The mutation applied on this attempt; the server's full outcome.
    Applied(Mutated),
    /// A retry found the expected epoch already consumed by exactly one
    /// mutation: an earlier send applied and its ack was lost in transit.
    /// The workflow's actual epoch is reported. (With concurrent writers
    /// on the same workflow the attribution is the caller's: the CAS only
    /// proves *some* single mutation consumed the epoch.)
    AppliedEarlier {
        /// The workflow's mutation epoch after the earlier apply.
        epoch: u64,
    },
}

/// Client-side deadline/retry discipline: per-attempt socket timeouts, a
/// bounded number of retries on transient errors with capped exponential
/// backoff + deterministic jitter, an overall deadline budget, and
/// idempotent mutate retries via an expected-epoch CAS.
///
/// Every attempt opens a fresh connection — after a timeout the old
/// connection's request/response pairing is unknowable, so it is never
/// reused. Only errors [`ServiceError::is_transient`] classifies as
/// retryable (I/O, overloaded, degraded, persistence) are retried;
/// model-level rejections fail fast.
#[derive(Debug, Clone)]
pub struct RequestPolicy {
    /// Per-attempt socket read/write timeout (`None` = block forever).
    pub timeout: Option<Duration>,
    /// Retries after the first attempt (0 = try exactly once).
    pub retries: u32,
    /// Base backoff: the sleep before retry `n` is
    /// `min(backoff << n, backoff_cap)` plus jitter in `[0, sleep/2]`.
    pub backoff: Duration,
    /// Upper bound of the exponential backoff.
    pub backoff_cap: Duration,
    /// Overall budget across attempts and backoff sleeps (`None` =
    /// unbounded): once exceeded, the last error is returned.
    pub deadline: Option<Duration>,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        RequestPolicy {
            timeout: None,
            retries: 2,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            deadline: None,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RequestPolicy {
    /// The default policy with a per-attempt timeout of `ms` milliseconds
    /// (0 = no timeout) — what the CLI's `--timeout-ms` flag builds. The
    /// timeout also bounds the whole call: the deadline is set to
    /// `ms × (retries + 1)` plus the worst-case backoff.
    #[must_use]
    pub fn with_timeout_ms(ms: u64) -> Self {
        RequestPolicy {
            timeout: (ms > 0).then(|| Duration::from_millis(ms)),
            ..RequestPolicy::default()
        }
    }

    /// Sets the retry budget (`--retries`).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The backoff before retry `attempt` (0-based): capped exponential
    /// plus deterministic jitter.
    fn backoff_before(&self, attempt: u32) -> Duration {
        let base = self
            .backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.backoff_cap);
        let base_ms = u64::try_from(base.as_millis()).unwrap_or(u64::MAX);
        let jitter = crate::storage::mix64(self.seed ^ u64::from(attempt)) % (base_ms / 2 + 1);
        base + Duration::from_millis(jitter)
    }

    /// `true` when a retry for `error` fits the policy: attempts remain,
    /// the error is transient, and the deadline budget is not exhausted.
    fn may_retry(&self, attempt: u32, error: &ServiceError, started: Instant) -> bool {
        attempt < self.retries
            && error.is_transient()
            && self.deadline.map_or(true, |deadline| {
                started.elapsed() + self.backoff_before(attempt) < deadline
            })
    }

    /// Runs `operation` against a fresh connection per attempt, retrying
    /// transient failures under the policy's backoff/deadline discipline.
    ///
    /// # Errors
    /// The last error once the policy gives up.
    pub fn call<T>(
        &self,
        addr: impl ToSocketAddrs,
        mut operation: impl FnMut(&mut ServiceClient) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let result = ServiceClient::connect_with(&addr, self.timeout)
                .and_then(|mut c| operation(&mut c));
            match result {
                Ok(value) => return Ok(value),
                Err(e) if self.may_retry(attempt, &e, started) => {
                    std::thread::sleep(self.backoff_before(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// An idempotent mutate: fetches the workflow's mutation epoch once,
    /// then retries the edit with that expected-epoch CAS guard — so the
    /// mutation applies **at most once** no matter how many sends the
    /// policy makes. A retry that finds the epoch consumed by exactly one
    /// mutation reports [`MutateOutcome::AppliedEarlier`] (the lost-ack
    /// case); a conflict on the very first send means a concurrent writer
    /// won and is reported as [`ServiceError::EpochConflict`].
    ///
    /// # Errors
    /// Transport and server errors once the policy gives up.
    pub fn mutate(
        &self,
        addr: impl ToSocketAddrs + Clone,
        workflow: WorkflowId,
        op: MutateOp,
    ) -> Result<MutateOutcome, ServiceError> {
        let base = self.call(addr.clone(), |c| c.epoch(workflow).map(|(_, e)| e))?;
        self.mutate_from(addr, workflow, op, base, false)
    }

    /// [`RequestPolicy::mutate`] with a caller-provided CAS base — resume
    /// a mutation whose earlier outcome is unknown (e.g. the process died
    /// after sending). `ambiguous` there is `true`, so an epoch conflict
    /// that consumed exactly the expected epoch resolves to
    /// [`MutateOutcome::AppliedEarlier`] even on the first attempt.
    ///
    /// # Errors
    /// Transport and server errors once the policy gives up.
    pub fn mutate_from(
        &self,
        addr: impl ToSocketAddrs,
        workflow: WorkflowId,
        op: MutateOp,
        base: u64,
        mut ambiguous: bool,
    ) -> Result<MutateOutcome, ServiceError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let result = ServiceClient::connect_with(&addr, self.timeout)
                .and_then(|mut c| c.mutate_cas(workflow, op.clone(), Some(base)));
            match result {
                Ok(mutated) => return Ok(MutateOutcome::Applied(mutated)),
                Err(ServiceError::EpochConflict { expected, actual })
                    if ambiguous && expected == base && actual == base + 1 =>
                {
                    // exactly one mutation consumed our epoch after a send
                    // whose ack we never saw: it was ours
                    return Ok(MutateOutcome::AppliedEarlier { epoch: actual });
                }
                Err(e) if self.may_retry(attempt, &e, started) => {
                    // once a send's fate is unknown, later conflicts on our
                    // epoch mean it applied
                    ambiguous = true;
                    std::thread::sleep(self.backoff_before(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Configuration of the concurrent batch driver.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Number of concurrent client connections.
    pub clients: usize,
    /// Validate requests issued per client.
    pub requests_per_client: usize,
    /// Requests in flight per connection: 0 or 1 issues one request per
    /// round trip; a larger depth sends that many validates in one
    /// coalesced write ([`ServiceClient::pipeline`]) before draining the
    /// responses.
    pub pipeline: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            clients: 1,
            requests_per_client: 1,
            pipeline: 1,
        }
    }
}

/// Outcome of one [`validate_throughput`] run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that failed (transport or server error).
    pub errors: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

impl ThroughputReport {
    /// Successful requests per second.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / seconds
    }
}

/// The batch driver: spawns `clients` threads, each opening one connection
/// and issuing `requests_per_client` validate requests round-robin over the
/// given workflows. This is the workload behind `wolves-bench`'s
/// `service_bench` binary.
///
/// # Errors
/// Reports a failure to spawn or join client threads; per-request failures
/// are counted in the report instead.
pub fn validate_throughput(
    addr: impl ToSocketAddrs,
    workflows: &[WorkflowId],
    config: BatchConfig,
) -> Result<ThroughputReport, ServiceError> {
    let addrs: Vec<std::net::SocketAddr> = addr.to_socket_addrs()?.collect();
    let start = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.clients.max(1));
        for client_index in 0..config.clients.max(1) {
            let addrs = addrs.clone();
            handles.push(scope.spawn(move || {
                let mut completed = 0usize;
                let mut errors = 0usize;
                let Ok(mut client) = ServiceClient::connect(addrs.as_slice()) else {
                    return (0, config.requests_per_client);
                };
                let depth = config.pipeline.max(1);
                let mut request_index = 0usize;
                while request_index < config.requests_per_client {
                    if workflows.is_empty() {
                        errors += 1;
                        request_index += 1;
                        continue;
                    }
                    let window = depth.min(config.requests_per_client - request_index);
                    let requests: Vec<Request> = (0..window)
                        .map(|offset| Request::Validate {
                            workflow: workflows
                                [(client_index + request_index + offset) % workflows.len()],
                            version: None,
                        })
                        .collect();
                    match client.pipeline(&requests) {
                        Ok(outcomes) => {
                            for outcome in outcomes {
                                match outcome {
                                    Ok(_) => completed += 1,
                                    Err(_) => errors += 1,
                                }
                            }
                        }
                        // a transport failure loses the connection and
                        // every request this client had left
                        Err(_) => {
                            errors += config.requests_per_client - request_index;
                            break;
                        }
                    }
                    request_index += window;
                }
                (completed, errors)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or((0, 0)))
            .collect::<Vec<_>>()
    });
    let elapsed = start.elapsed();
    Ok(ThroughputReport {
        completed: outcomes.iter().map(|(c, _)| c).sum(),
        errors: outcomes.iter().map(|(_, e)| e).sum(),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServerConfig};
    use wolves_repo::figure1;

    #[test]
    fn client_round_trip_register_validate_correct() {
        let server = serve(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = ServiceClient::connect(server.local_addr()).unwrap();
        let fixture = figure1();
        let id = client.register(&fixture.spec, Some(&fixture.view)).unwrap();
        let verdict = client.validate(id, None).unwrap();
        assert!(!verdict.sound);
        let corrected = client.correct(id, Strategy::Strong).unwrap();
        assert_eq!(corrected.composites_after, 8);
        assert!(client.validate(id, None).unwrap().sound);
        // server-side errors come back as their typed variant, not an
        // opaque Remote string
        let err = client.validate(WorkflowId(999), None).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::UnknownWorkflow(WorkflowId(999))
        ));
        client.shutdown().unwrap();
        drop(client);
        server.join();
    }

    #[test]
    fn pipeline_and_batch_answer_in_order_with_slotted_errors() {
        let server = serve(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = ServiceClient::connect(server.local_addr()).unwrap();
        let fixture = figure1();
        let id = client.register(&fixture.spec, Some(&fixture.view)).unwrap();
        let requests = vec![
            Request::Validate {
                workflow: id,
                version: None,
            },
            Request::Validate {
                workflow: WorkflowId(999),
                version: None,
            },
            Request::Epoch { workflow: id },
        ];
        // pipelined: one write, three responses in order, the bad
        // workflow's error in its slot
        let outcomes = client.pipeline(&requests).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(matches!(outcomes[0], Ok(Response::Verdict(_))));
        assert!(matches!(
            outcomes[1],
            Err(ServiceError::UnknownWorkflow(WorkflowId(999)))
        ));
        assert!(matches!(outcomes[2], Ok(Response::Epoch { .. })));
        // batched: same shape through the server-side batch verb
        let outcomes = client.batch(requests).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(matches!(outcomes[0], Ok(Response::Verdict(_))));
        assert!(matches!(
            outcomes[1],
            Err(ServiceError::UnknownWorkflow(WorkflowId(999)))
        ));
        assert!(matches!(outcomes[2], Ok(Response::Epoch { .. })));
        // the connection stays usable for plain calls afterwards
        assert!(client.validate(id, None).is_ok());
        server.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pipelined_throughput_driver_works_against_the_evented_server() {
        let server = serve(&ServerConfig {
            shards: 2,
            workers: 4,
            evented: true,
            ..ServerConfig::default()
        })
        .unwrap();
        let store = server.store();
        let ids: Vec<WorkflowId> = (0..4)
            .map(|_| {
                let f = figure1();
                store.register(f.spec, Some(f.view))
            })
            .collect();
        let report = validate_throughput(
            server.local_addr(),
            &ids,
            BatchConfig {
                clients: 4,
                requests_per_client: 24,
                pipeline: 8,
            },
        )
        .unwrap();
        assert_eq!(report.completed, 96);
        assert_eq!(report.errors, 0);
        server.shutdown();
    }

    #[test]
    fn policy_mutates_are_idempotent_under_retry() {
        let server = serve(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let mut client = ServiceClient::connect(addr).unwrap();
        let fixture = figure1();
        let id = client.register(&fixture.spec, Some(&fixture.view)).unwrap();
        let policy = RequestPolicy::with_timeout_ms(5_000).retries(2);
        let op = MutateOp::AddEdge {
            from: "Check additional annotations".to_owned(),
            to: "Build phylo tree".to_owned(),
        };
        // the normal path: fetch the epoch, apply once
        match policy.mutate(addr, id, op.clone()).unwrap() {
            MutateOutcome::Applied(mutated) => assert_eq!(mutated.epoch, 1),
            MutateOutcome::AppliedEarlier { .. } => panic!("first apply cannot be earlier"),
        }
        // the lost-ack path: a send from CAS base 1 applied but its ack
        // never arrived; the resume resolves the conflict to AppliedEarlier
        // instead of applying twice
        let op2 = MutateOp::AddEdge {
            from: "Display tree".to_owned(),
            to: "Format alignment".to_owned(),
        };
        client.mutate_cas(id, op2.clone(), Some(1)).unwrap();
        match policy.mutate_from(addr, id, op2, 1, true).unwrap() {
            MutateOutcome::AppliedEarlier { epoch } => assert_eq!(epoch, 2),
            MutateOutcome::Applied(_) => panic!("the edit must not apply twice"),
        }
        assert_eq!(client.epoch(id).unwrap(), (2, 2));
        // a conflict on an unambiguous first send is a concurrent writer,
        // surfaced as the typed error
        let err = policy
            .mutate_from(
                addr,
                id,
                MutateOp::AddEdge {
                    from: "Display tree".to_owned(),
                    to: "Check additional annotations".to_owned(),
                },
                0,
                false,
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::EpochConflict { .. }), "{err}");
        server.shutdown();
    }

    #[test]
    fn policy_gives_up_after_the_retry_budget_on_dead_servers() {
        // a bound port that nothing listens on after drop
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let policy = RequestPolicy {
            retries: 1,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..RequestPolicy::default()
        };
        let err = policy.call(addr, |c| c.stats()).unwrap_err();
        assert!(matches!(err, ServiceError::Io(_)), "{err}");
    }

    #[test]
    fn throughput_driver_counts_all_requests() {
        let server = serve(&ServerConfig {
            shards: 2,
            workers: 4,
            ..ServerConfig::default()
        })
        .unwrap();
        let fixture = figure1();
        let store = server.store();
        let ids: Vec<WorkflowId> = (0..4)
            .map(|_| {
                let f = figure1();
                store.register(f.spec, Some(f.view))
            })
            .collect();
        drop(fixture);
        let report = validate_throughput(
            server.local_addr(),
            &ids,
            BatchConfig {
                clients: 4,
                requests_per_client: 25,
                pipeline: 1,
            },
        )
        .unwrap();
        assert_eq!(report.completed, 100);
        assert_eq!(report.errors, 0);
        assert!(report.requests_per_sec() > 0.0);
        // composite-granular counters are deterministic under concurrency:
        // exactly one compute per (workflow, composite) — 4 × 7 misses —
        // with every other composite check served from cache. Request-level
        // misses depend on which racing client computed a composite first,
        // but at least one per workflow and they partition the 100 requests.
        let stats = store.stats();
        assert_eq!(stats.composite_misses(), 4 * 7);
        assert_eq!(stats.composite_hits(), 100 * 7 - 4 * 7);
        assert!(stats.validate_misses() >= 4);
        assert_eq!(stats.validate_hits() + stats.validate_misses(), 100);
        server.shutdown();
    }
}
