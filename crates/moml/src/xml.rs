//! A minimal XML reader sufficient for MOML documents.
//!
//! Supported: nested elements, attributes in single or double quotes,
//! self-closing tags, comments, XML declarations / processing instructions,
//! DOCTYPE lines, character data (collected but unused by MOML), and the
//! five predefined entities (`&lt; &gt; &amp; &quot; &apos;`) plus decimal
//! and hexadecimal character references. Namespaces, CDATA sections and DTD
//! internal subsets are out of scope — MOML does not use them.

use crate::error::MomlError;

/// An XML element: name, attributes and child elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order (text content is not preserved —
    /// MOML is attribute-only).
    pub children: Vec<XmlElement>,
}

impl XmlElement {
    /// Creates an element with no attributes or children.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Looks up an attribute value by name.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterates over the child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

/// Parses an XML document and returns its root element.
///
/// # Errors
/// Returns [`MomlError::Xml`] for malformed input.
pub fn parse(input: &str) -> Result<XmlElement, MomlError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_prolog()?;
    let root = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing content after the root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> MomlError {
        MomlError::Xml {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.bytes[self.pos..].starts_with(prefix.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, comments, DOCTYPE and whitespace before
    /// the root element.
    fn skip_prolog(&mut self) -> Result<(), MomlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments and whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, marker: &str) -> Result<(), MomlError> {
        match find_from(self.bytes, self.pos, marker.as_bytes()) {
            Some(found) => {
                self.pos = found + marker.len();
                Ok(())
            }
            None => Err(self.error(&format!("unterminated construct, expected '{marker}'"))),
        }
    }

    fn parse_element(&mut self) -> Result<XmlElement, MomlError> {
        self.skip_whitespace();
        if self.peek() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    self.parse_children(&mut element)?;
                    return Ok(element);
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let value = self.parse_quoted_value()?;
                    element.attributes.push((key, value));
                }
                None => return Err(self.error("unexpected end of input inside a tag")),
            }
        }
    }

    fn parse_children(&mut self, element: &mut XmlElement) -> Result<(), MomlError> {
        loop {
            // skip character data (MOML carries no meaningful text nodes)
            while self.peek().is_some() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            if self.peek().is_none() {
                return Err(self.error(&format!("unterminated element <{}>", element.name)));
            }
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<?") {
                self.skip_until("?>")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let closing = self.parse_name()?;
                if closing != element.name {
                    return Err(self.error(&format!(
                        "mismatched closing tag </{closing}> for <{}>",
                        element.name
                    )));
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' in closing tag"));
                }
                self.pos += 1;
                return Ok(());
            }
            let child = self.parse_element()?;
            element.children.push(child);
        }
    }

    fn parse_name(&mut self) -> Result<String, MomlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_quoted_value(&mut self) -> Result<String, MomlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected a quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.pos += 1;
                return unescape(&raw).map_err(|message| MomlError::Xml {
                    message,
                    offset: start,
                });
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Expands XML entity and character references in attribute values.
fn unescape(raw: &str) -> Result<String, String> {
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_owned())?;
        let entity = &rest[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad character reference '&{entity};'"))?;
                out.push(char::from_u32(code).ok_or("invalid character code")?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference '&{entity};'"))?;
                out.push(char::from_u32(code).ok_or("invalid character code")?);
            }
            _ => return Err(format!("unknown entity '&{entity};'")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escapes a string for use inside a double-quoted XML attribute.
#[must_use]
pub fn escape_attribute(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = r#"<?xml version="1.0"?>
<!-- a MOML-ish document -->
<entity name="wf" class="ptolemy.actor.TypedCompositeActor">
  <entity name="t1" class="Leaf"/>
  <relation name="r1" class="TypedIORelation"></relation>
  <link port="t1.output" relation="r1"/>
</entity>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "entity");
        assert_eq!(root.attribute("name"), Some("wf"));
        assert_eq!(root.children.len(), 3);
        assert_eq!(root.children_named("entity").count(), 1);
        assert_eq!(root.children_named("link").count(), 1);
        assert_eq!(
            root.children_named("link")
                .next()
                .unwrap()
                .attribute("port"),
            Some("t1.output")
        );
    }

    #[test]
    fn entities_in_attributes_are_unescaped() {
        let doc = r#"<e name="a &amp; b &lt;tag&gt; &#65;&#x42;"/>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.attribute("name"), Some("a & b <tag> AB"));
    }

    #[test]
    fn single_quoted_attributes_work() {
        let root = parse("<e name='it\"s fine'/>").unwrap();
        assert_eq!(root.attribute("name"), Some("it\"s fine"));
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = parse("<a><b></a></a>").unwrap_err();
        assert!(matches!(err, MomlError::Xml { .. }));
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn unterminated_documents_are_rejected() {
        assert!(parse("<a><b/>").is_err());
        assert!(parse("<a attr=\"x>").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected_but_comments_allowed() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>\n<!-- fine -->\n").is_ok());
    }

    #[test]
    fn doctype_and_processing_instructions_are_skipped() {
        let doc = "<?xml version=\"1.0\" standalone=\"no\"?>\n<!DOCTYPE entity PUBLIC \"x\" \"y\">\n<entity name=\"e\"/>";
        let root = parse(doc).unwrap();
        assert_eq!(root.attribute("name"), Some("e"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "a<b>&\"c'";
        let doc = format!("<e v=\"{}\"/>", escape_attribute(original));
        let root = parse(&doc).unwrap();
        assert_eq!(root.attribute("v"), Some(original));
    }
}
