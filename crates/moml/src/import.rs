//! MOML → workflow specification + view.

use wolves_workflow::{AtomicTask, DataDependency, TaskId, WorkflowSpec, WorkflowView};

use crate::error::MomlError;
use crate::model::MomlDocument;
use crate::xml;

/// The result of importing a MOML document.
#[derive(Debug, Clone)]
pub struct ImportedWorkflow {
    /// The workflow specification.
    pub spec: WorkflowSpec,
    /// The pre-defined view, when the document contained composite actors.
    /// Atomic tasks outside any composite become singleton composites so the
    /// view is always a partition.
    pub view: Option<WorkflowView>,
}

/// Imports a MOML document (paper §3.2: "A user may load into the system a
/// workflow specification and a pre-defined workflow view defined in MOML").
///
/// # Errors
/// Fails on malformed XML, structurally invalid MOML, dangling references,
/// duplicate task names or cyclic dataflow.
pub fn from_moml(input: &str) -> Result<ImportedWorkflow, MomlError> {
    let root = xml::parse(input)?;
    let document = MomlDocument::from_xml(&root)?;
    import_document(&document)
}

/// Imports an already parsed document model.
///
/// # Errors
/// Same as [`from_moml`].
pub fn import_document(document: &MomlDocument) -> Result<ImportedWorkflow, MomlError> {
    let mut spec = WorkflowSpec::new(document.name.clone());
    let mut ids: Vec<(String, TaskId)> = Vec::with_capacity(document.atomics.len());
    for atomic in &document.atomics {
        let task = AtomicTask::new(atomic.name.clone()).with_param("class", atomic.class.clone());
        let id = spec.add_task(task)?;
        ids.push((atomic.name.clone(), id));
    }
    let id_of =
        |name: &str| -> Option<TaskId> { ids.iter().find(|(n, _)| n == name).map(|(_, id)| *id) };
    for connection in &document.connections {
        let from = id_of(&connection.from)
            .ok_or_else(|| MomlError::DanglingReference(connection.from.clone()))?;
        let to = id_of(&connection.to)
            .ok_or_else(|| MomlError::DanglingReference(connection.to.clone()))?;
        // MOML models occasionally repeat links; treat duplicates as one
        // dependency instead of failing the import.
        match spec.add_dependency(from, to, DataDependency::unnamed()) {
            Ok(()) => {}
            Err(wolves_workflow::WorkflowError::Graph(
                wolves_graph::GraphError::DuplicateEdge(_, _),
            )) => {}
            Err(e) => return Err(e.into()),
        }
    }
    spec.ensure_acyclic()?;

    let view = if document.has_view() {
        let mut groups: Vec<(String, Vec<TaskId>)> = Vec::new();
        for composite in &document.composites {
            let members = composite
                .members
                .iter()
                .map(|m| id_of(m).ok_or_else(|| MomlError::DanglingReference(m.clone())))
                .collect::<Result<Vec<_>, _>>()?;
            groups.push((composite.name.clone(), members));
        }
        for atomic in &document.atomics {
            if atomic.parent_composite.is_none() {
                let id = id_of(&atomic.name).expect("atomic was just inserted");
                groups.push((atomic.name.clone(), vec![id]));
            }
        }
        Some(WorkflowView::from_groups(
            &spec,
            format!("{}-view", document.name),
            groups,
        )?)
    } else {
        None
    };
    Ok(ImportedWorkflow { spec, view })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_core::validate::validate;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<entity name="mini-phylo" class="ptolemy.actor.TypedCompositeActor">
  <entity name="Extract annotations" class="org.kepler.Extract"/>
  <entity name="Extract sequences" class="org.kepler.Extract"/>
  <entity name="Curate and align" class="ptolemy.actor.TypedCompositeActor">
    <entity name="Curate" class="org.kepler.Curate"/>
    <entity name="Align" class="org.kepler.Align"/>
  </entity>
  <entity name="Format annotations" class="org.kepler.Format"/>
  <entity name="Format alignment" class="org.kepler.Format"/>
  <relation name="r1" class="ptolemy.actor.TypedIORelation"/>
  <relation name="r2" class="ptolemy.actor.TypedIORelation"/>
  <relation name="r3" class="ptolemy.actor.TypedIORelation"/>
  <relation name="r4" class="ptolemy.actor.TypedIORelation"/>
  <link port="Extract annotations.output" relation="r1"/>
  <link port="Curate.input" relation="r1"/>
  <link port="Curate.output" relation="r2"/>
  <link port="Format annotations.input" relation="r2"/>
  <link port="Extract sequences.output" relation="r3"/>
  <link port="Align.input" relation="r3"/>
  <link port="Align.output" relation="r4"/>
  <link port="Format alignment.input" relation="r4"/>
</entity>"#;

    #[test]
    fn import_builds_spec_and_view() {
        let imported = from_moml(SAMPLE).unwrap();
        assert_eq!(imported.spec.name(), "mini-phylo");
        assert_eq!(imported.spec.task_count(), 6);
        assert_eq!(imported.spec.dependency_count(), 4);
        let view = imported.view.unwrap();
        // 1 composite + 4 singleton composites
        assert_eq!(view.composite_count(), 5);
        // the imported composite {Curate, Align} is unsound — exactly the
        // Figure 1(b) situation
        let report = validate(&imported.spec, &view);
        assert_eq!(report.unsound_composites().len(), 1);
    }

    #[test]
    fn import_without_composites_has_no_view() {
        let doc = r#"<entity name="flat">
  <entity name="a" class="X"/>
  <entity name="b" class="X"/>
  <relation name="r" class="R"/>
  <link port="a.output" relation="r"/>
  <link port="b.input" relation="r"/>
</entity>"#;
        let imported = from_moml(doc).unwrap();
        assert!(imported.view.is_none());
        assert_eq!(imported.spec.dependency_count(), 1);
    }

    #[test]
    fn cyclic_moml_is_rejected() {
        let doc = r#"<entity name="cyclic">
  <entity name="a" class="X"/>
  <entity name="b" class="X"/>
  <relation name="r1" class="R"/>
  <relation name="r2" class="R"/>
  <link port="a.output" relation="r1"/>
  <link port="b.input" relation="r1"/>
  <link port="b.output" relation="r2"/>
  <link port="a.input" relation="r2"/>
</entity>"#;
        let err = from_moml(doc).unwrap_err();
        assert!(matches!(err, MomlError::Workflow(_)));
    }

    #[test]
    fn duplicate_links_do_not_fail_the_import() {
        let doc = r#"<entity name="dup">
  <entity name="a" class="X"/>
  <entity name="b" class="X"/>
  <relation name="r" class="R"/>
  <link port="a.output" relation="r"/>
  <link port="a.out2" relation="r"/>
  <link port="b.input" relation="r"/>
</entity>"#;
        let imported = from_moml(doc).unwrap();
        assert_eq!(imported.spec.dependency_count(), 1);
    }
}
