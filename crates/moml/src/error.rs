//! Errors of the import/export layer.

use std::fmt;

/// Errors raised while parsing or generating MOML / text-format documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MomlError {
    /// Malformed XML input; the payload describes the problem and the byte
    /// offset where it was detected.
    Xml {
        /// Human-readable description.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// The XML was well-formed but not a valid MOML workflow document.
    Structure(String),
    /// A link referenced an entity or relation that was never declared.
    DanglingReference(String),
    /// Error bubbled up from workflow construction (duplicate names,
    /// cycles, partition violations).
    Workflow(wolves_workflow::WorkflowError),
    /// Malformed native text-format input (line number, description).
    Text {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for MomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MomlError::Xml { message, offset } => {
                write!(f, "XML error at byte {offset}: {message}")
            }
            MomlError::Structure(message) => write!(f, "not a MOML workflow: {message}"),
            MomlError::DanglingReference(name) => {
                write!(f, "link references undeclared name '{name}'")
            }
            MomlError::Workflow(e) => write!(f, "workflow error: {e}"),
            MomlError::Text { line, message } => {
                write!(f, "text format error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for MomlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MomlError::Workflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wolves_workflow::WorkflowError> for MomlError {
    fn from(e: wolves_workflow::WorkflowError) -> Self {
        MomlError::Workflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_position_information() {
        let e = MomlError::Xml {
            message: "unexpected '<'".into(),
            offset: 17,
        };
        assert!(e.to_string().contains("byte 17"));
        let e = MomlError::Text {
            line: 3,
            message: "unknown directive".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
