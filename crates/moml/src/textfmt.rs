//! A minimal native text format for workflows and views.
//!
//! One declaration per line, fields separated by a single TAB character,
//! `#` starts a comment. With `<TAB>` standing in for the tab byte (`\t`) —
//! the column gaps below are *not* spaces:
//!
//! ```text
//! workflow<TAB>phylogenomic-inference
//! task<TAB>Select entries
//! task<TAB>Split entries
//! edge<TAB>Select entries<TAB>Split entries
//! view<TAB>figure-1b
//! composite<TAB>Retrieve entries (13)<TAB>Select entries|Split entries
//! ```
//!
//! The format is what the CLI reads and writes by default; it is easier to
//! author by hand than MOML and diff-friendly for experiment fixtures.

use std::fmt::Write as _;

use wolves_workflow::{AtomicTask, DataDependency, TaskId, WorkflowSpec, WorkflowView};

use crate::error::MomlError;
use crate::import::ImportedWorkflow;

/// Serialises a workflow (and optional view) in the native text format.
#[must_use]
pub fn write_text_format(spec: &WorkflowSpec, view: Option<&WorkflowView>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "workflow\t{}", spec.name());
    for (_, task) in spec.tasks() {
        let _ = writeln!(out, "task\t{}", task.name);
    }
    for (from, to) in spec.dependencies() {
        let from_name = spec.task(from).map(|t| t.name.clone()).unwrap_or_default();
        let to_name = spec.task(to).map(|t| t.name.clone()).unwrap_or_default();
        let _ = writeln!(out, "edge\t{from_name}\t{to_name}");
    }
    if let Some(view) = view {
        let _ = writeln!(out, "view\t{}", view.name());
        for (_, composite) in view.composites() {
            let members: Vec<String> = composite
                .members()
                .iter()
                .map(|&m| spec.task(m).map(|t| t.name.clone()).unwrap_or_default())
                .collect();
            let _ = writeln!(out, "composite\t{}\t{}", composite.name, members.join("|"));
        }
    }
    out
}

/// Parses the native text format.
///
/// # Errors
/// Reports the line number and reason for every malformed line, unknown task
/// reference, duplicate declaration or partition violation.
pub fn read_text_format(input: &str) -> Result<ImportedWorkflow, MomlError> {
    let mut spec_name = "imported-workflow".to_owned();
    let mut view_name: Option<String> = None;
    let mut tasks: Vec<String> = Vec::new();
    let mut edges: Vec<(String, String)> = Vec::new();
    let mut composites: Vec<(String, Vec<String>)> = Vec::new();

    for (index, raw_line) in input.lines().enumerate() {
        let line_no = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let directive = fields.next().unwrap_or_default();
        let rest: Vec<&str> = fields.collect();
        let error = |message: &str| MomlError::Text {
            line: line_no,
            message: message.to_owned(),
        };
        match directive {
            "workflow" => {
                spec_name = rest
                    .first()
                    .ok_or_else(|| error("workflow needs a name"))?
                    .to_string();
            }
            "task" => {
                let name = rest.first().ok_or_else(|| error("task needs a name"))?;
                tasks.push((*name).to_owned());
            }
            "edge" => {
                if rest.len() != 2 {
                    return Err(error("edge needs exactly two task names"));
                }
                edges.push((rest[0].to_owned(), rest[1].to_owned()));
            }
            "view" => {
                view_name = Some(
                    rest.first()
                        .ok_or_else(|| error("view needs a name"))?
                        .to_string(),
                );
            }
            "composite" => {
                if rest.len() != 2 {
                    return Err(error("composite needs a name and a member list"));
                }
                let members = rest[1]
                    .split('|')
                    .map(str::trim)
                    .filter(|m| !m.is_empty())
                    .map(str::to_owned)
                    .collect::<Vec<_>>();
                if members.is_empty() {
                    return Err(error("composite has no members"));
                }
                composites.push((rest[0].to_owned(), members));
            }
            other => return Err(error(&format!("unknown directive '{other}'"))),
        }
    }

    let mut spec = WorkflowSpec::new(spec_name);
    let mut ids: Vec<(String, TaskId)> = Vec::new();
    for name in &tasks {
        let id = spec.add_task(AtomicTask::new(name.clone()))?;
        ids.push((name.clone(), id));
    }
    let id_of = |name: &str| ids.iter().find(|(n, _)| n == name).map(|(_, id)| *id);
    for (from, to) in &edges {
        let from_id = id_of(from).ok_or_else(|| MomlError::DanglingReference(from.clone()))?;
        let to_id = id_of(to).ok_or_else(|| MomlError::DanglingReference(to.clone()))?;
        spec.add_dependency(from_id, to_id, DataDependency::unnamed())?;
    }
    spec.ensure_acyclic()?;

    let view = if composites.is_empty() {
        None
    } else {
        let mut groups: Vec<(String, Vec<TaskId>)> = Vec::new();
        let mut covered: std::collections::BTreeSet<TaskId> = std::collections::BTreeSet::new();
        for (name, members) in &composites {
            let member_ids = members
                .iter()
                .map(|m| id_of(m).ok_or_else(|| MomlError::DanglingReference(m.clone())))
                .collect::<Result<Vec<_>, _>>()?;
            covered.extend(member_ids.iter().copied());
            groups.push((name.clone(), member_ids));
        }
        // uncovered tasks become singleton composites, like the MOML importer
        for (name, id) in &ids {
            if !covered.contains(id) {
                groups.push((name.clone(), vec![*id]));
            }
        }
        Some(WorkflowView::from_groups(
            &spec,
            view_name.unwrap_or_else(|| "imported-view".to_owned()),
            groups,
        )?)
    };
    Ok(ImportedWorkflow { spec, view })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_repo::figure1;

    #[test]
    fn figure1_round_trips_through_the_text_format() {
        let fixture = figure1();
        let text = write_text_format(&fixture.spec, Some(&fixture.view));
        let imported = read_text_format(&text).unwrap();
        assert_eq!(imported.spec.task_count(), 12);
        assert_eq!(imported.spec.dependency_count(), 12);
        let view = imported.view.unwrap();
        assert_eq!(view.composite_count(), 7);
        let report = wolves_core::validate::validate(&imported.spec, &view);
        assert_eq!(report.unsound_composites().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a workflow\nworkflow\tdemo\n\ntask\ta\ntask\tb\nedge\ta\tb\n";
        let imported = read_text_format(text).unwrap();
        assert_eq!(imported.spec.name(), "demo");
        assert_eq!(imported.spec.task_count(), 2);
        assert!(imported.view.is_none());
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let text = "workflow\tdemo\ntask\ta\nedge\ta\n";
        let err = read_text_format(text).unwrap_err();
        assert!(matches!(err, MomlError::Text { line: 3, .. }));
        let text = "frobnicate\tx\n";
        let err = read_text_format(text).unwrap_err();
        assert!(matches!(err, MomlError::Text { line: 1, .. }));
    }

    #[test]
    fn unknown_task_references_are_rejected() {
        let text = "workflow\tdemo\ntask\ta\nedge\ta\tghost\n";
        let err = read_text_format(text).unwrap_err();
        assert!(matches!(err, MomlError::DanglingReference(name) if name == "ghost"));
        let text = "workflow\tdemo\ntask\ta\ncomposite\tc\ta|ghost\n";
        let err = read_text_format(text).unwrap_err();
        assert!(matches!(err, MomlError::DanglingReference(name) if name == "ghost"));
    }

    #[test]
    fn partial_composites_are_padded_with_singletons() {
        let text = "workflow\tdemo\ntask\ta\ntask\tb\ntask\tc\nedge\ta\tb\nview\tv\ncomposite\tfront\ta|b\n";
        let imported = read_text_format(text).unwrap();
        let view = imported.view.unwrap();
        assert_eq!(view.composite_count(), 2);
    }
}
