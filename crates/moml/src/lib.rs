//! # wolves-moml
//!
//! Import/export of workflow specifications and views.
//!
//! The WOLVES demo loads workflows and pre-defined views written in MOML —
//! the Modeling Markup Language used by Ptolemy II and the Kepler workflow
//! system (paper §3.2). This crate implements:
//!
//! * [`xml`] — a small, dependency-free XML reader sufficient for MOML
//!   documents (elements, attributes, comments, processing instructions,
//!   the five predefined entities).
//! * [`model`] — the MOML document model: entities, relations and links.
//! * [`import`] — MOML → [`wolves_workflow::WorkflowSpec`] +
//!   [`wolves_workflow::WorkflowView`] (nested composite actors become
//!   composite tasks).
//! * [`export`] — the reverse direction, producing MOML that round-trips
//!   through the importer.
//! * [`textfmt`] — a minimal native text format (one declaration per line)
//!   used by the CLI and the test suite where XML would just be noise.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod export;
pub mod import;
pub mod model;
pub mod textfmt;
pub mod xml;

pub use error::MomlError;
pub use export::to_moml;
pub use import::{from_moml, ImportedWorkflow};
pub use textfmt::{read_text_format, write_text_format};
