//! The MOML document model used by the importer and exporter.
//!
//! MOML (Modeling Markup Language) describes Ptolemy II / Kepler models as
//! nested *entities* connected through *relations* by *links* between ports.
//! The subset relevant for WOLVES:
//!
//! * the root `<entity>` is the workflow;
//! * nested leaf `<entity>` elements are atomic tasks;
//! * nested composite `<entity>` elements (class `…TypedCompositeActor`)
//!   are the composite tasks of a pre-defined view, their children the
//!   member atomic tasks;
//! * `<relation>` elements plus `<link port="Task.output" relation="r"/>` /
//!   `<link port="Task.input" relation="r"/>` pairs encode data
//!   dependencies.

use crate::error::MomlError;
use crate::xml::XmlElement;

/// Class name MOML uses for composite actors.
pub const COMPOSITE_CLASS: &str = "ptolemy.actor.TypedCompositeActor";
/// Class name used for generated atomic actors.
pub const ATOMIC_CLASS: &str = "ptolemy.actor.TypedAtomicActor";
/// Class name used for relations.
pub const RELATION_CLASS: &str = "ptolemy.actor.TypedIORelation";

/// One atomic actor (task) of a MOML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MomlAtomicEntity {
    /// Entity name (unique within the document).
    pub name: String,
    /// Entity class.
    pub class: String,
    /// Name of the composite entity containing it, if any.
    pub parent_composite: Option<String>,
}

/// One composite actor of a MOML document — a candidate composite task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MomlCompositeEntity {
    /// Entity name.
    pub name: String,
    /// Names of the member atomic entities.
    pub members: Vec<String>,
}

/// A dataflow connection extracted from relations and links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MomlConnection {
    /// Name of the producing entity.
    pub from: String,
    /// Name of the consuming entity.
    pub to: String,
}

/// The parsed MOML document, flattened into the parts WOLVES needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MomlDocument {
    /// Workflow name (root entity name).
    pub name: String,
    /// All atomic entities in document order.
    pub atomics: Vec<MomlAtomicEntity>,
    /// All composite entities (the pre-defined view, if any).
    pub composites: Vec<MomlCompositeEntity>,
    /// Dataflow connections.
    pub connections: Vec<MomlConnection>,
}

impl MomlDocument {
    /// Builds the document model from a parsed XML root element.
    ///
    /// # Errors
    /// Fails when the root is not an `entity`, when links reference unknown
    /// relations/entities, or when ports are not of the `Name.port` form.
    pub fn from_xml(root: &XmlElement) -> Result<Self, MomlError> {
        if root.name != "entity" {
            return Err(MomlError::Structure(format!(
                "root element must be <entity>, found <{}>",
                root.name
            )));
        }
        let name = root
            .attribute("name")
            .unwrap_or("imported-workflow")
            .to_owned();
        let mut doc = MomlDocument {
            name,
            atomics: Vec::new(),
            composites: Vec::new(),
            connections: Vec::new(),
        };
        // entities (one level of composite nesting, as produced by view tools)
        for child in root.children_named("entity") {
            let child_name = child
                .attribute("name")
                .ok_or_else(|| MomlError::Structure("entity without a name".into()))?
                .to_owned();
            let class = child.attribute("class").unwrap_or(ATOMIC_CLASS).to_owned();
            let is_composite =
                class.contains("CompositeActor") || child.children_named("entity").count() > 0;
            if is_composite {
                let mut members = Vec::new();
                for grandchild in child.children_named("entity") {
                    let member_name = grandchild
                        .attribute("name")
                        .ok_or_else(|| MomlError::Structure("entity without a name".into()))?
                        .to_owned();
                    doc.atomics.push(MomlAtomicEntity {
                        name: member_name.clone(),
                        class: grandchild
                            .attribute("class")
                            .unwrap_or(ATOMIC_CLASS)
                            .to_owned(),
                        parent_composite: Some(child_name.clone()),
                    });
                    members.push(member_name);
                }
                doc.composites.push(MomlCompositeEntity {
                    name: child_name,
                    members,
                });
            } else {
                doc.atomics.push(MomlAtomicEntity {
                    name: child_name,
                    class,
                    parent_composite: None,
                });
            }
        }
        // relations and links: collect, per relation, the producing and
        // consuming entities, then emit the cross product as connections
        let mut relations: Vec<String> = Vec::new();
        for relation in root.children_named("relation") {
            let rel_name = relation
                .attribute("name")
                .ok_or_else(|| MomlError::Structure("relation without a name".into()))?;
            relations.push(rel_name.to_owned());
        }
        let known_entity = |name: &str| doc.atomics.iter().any(|a| a.name == name);
        let mut producers: Vec<(String, Vec<String>)> =
            relations.iter().map(|r| (r.clone(), Vec::new())).collect();
        let mut consumers: Vec<(String, Vec<String>)> =
            relations.iter().map(|r| (r.clone(), Vec::new())).collect();
        for link in root.children_named("link") {
            let port = link
                .attribute("port")
                .ok_or_else(|| MomlError::Structure("link without a port".into()))?;
            let relation = link
                .attribute("relation")
                .ok_or_else(|| MomlError::Structure("link without a relation".into()))?;
            let (entity, port_name) = port.rsplit_once('.').ok_or_else(|| {
                MomlError::Structure(format!("port '{port}' is not of the form Entity.port"))
            })?;
            if !known_entity(entity) {
                return Err(MomlError::DanglingReference(entity.to_owned()));
            }
            let bucket = if port_name.contains("out") {
                &mut producers
            } else {
                &mut consumers
            };
            let slot = bucket
                .iter_mut()
                .find(|(r, _)| r == relation)
                .ok_or_else(|| MomlError::DanglingReference(relation.to_owned()))?;
            slot.1.push(entity.to_owned());
        }
        for ((relation, from_list), (_, to_list)) in producers.iter().zip(consumers.iter()) {
            let _ = relation;
            for from in from_list {
                for to in to_list {
                    if from != to {
                        doc.connections.push(MomlConnection {
                            from: from.clone(),
                            to: to.clone(),
                        });
                    }
                }
            }
        }
        Ok(doc)
    }

    /// `true` when the document carries a pre-defined view (at least one
    /// composite entity).
    #[must_use]
    pub fn has_view(&self) -> bool {
        !self.composites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::parse;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<entity name="phylo" class="ptolemy.actor.TypedCompositeActor">
  <entity name="Select" class="org.kepler.Select"/>
  <entity name="Group16" class="ptolemy.actor.TypedCompositeActor">
    <entity name="Curate" class="org.kepler.Curate"/>
    <entity name="Align" class="org.kepler.Align"/>
  </entity>
  <relation name="r1" class="ptolemy.actor.TypedIORelation"/>
  <relation name="r2" class="ptolemy.actor.TypedIORelation"/>
  <link port="Select.output" relation="r1"/>
  <link port="Curate.input" relation="r1"/>
  <link port="Curate.output" relation="r2"/>
  <link port="Align.input" relation="r2"/>
</entity>"#;

    #[test]
    fn sample_document_is_flattened() {
        let doc = MomlDocument::from_xml(&parse(SAMPLE).unwrap()).unwrap();
        assert_eq!(doc.name, "phylo");
        assert_eq!(doc.atomics.len(), 3);
        assert_eq!(doc.composites.len(), 1);
        assert!(doc.has_view());
        assert_eq!(doc.composites[0].members, vec!["Curate", "Align"]);
        assert_eq!(
            doc.connections,
            vec![
                MomlConnection {
                    from: "Select".into(),
                    to: "Curate".into()
                },
                MomlConnection {
                    from: "Curate".into(),
                    to: "Align".into()
                },
            ]
        );
        let curate = doc.atomics.iter().find(|a| a.name == "Curate").unwrap();
        assert_eq!(curate.parent_composite.as_deref(), Some("Group16"));
    }

    #[test]
    fn links_to_unknown_entities_are_rejected() {
        let doc = r#"<entity name="w">
  <entity name="a" class="X"/>
  <relation name="r1" class="R"/>
  <link port="ghost.output" relation="r1"/>
</entity>"#;
        let err = MomlDocument::from_xml(&parse(doc).unwrap()).unwrap_err();
        assert!(matches!(err, MomlError::DanglingReference(name) if name == "ghost"));
    }

    #[test]
    fn links_to_unknown_relations_are_rejected() {
        let doc = r#"<entity name="w">
  <entity name="a" class="X"/>
  <link port="a.output" relation="nope"/>
</entity>"#;
        let err = MomlDocument::from_xml(&parse(doc).unwrap()).unwrap_err();
        assert!(matches!(err, MomlError::DanglingReference(name) if name == "nope"));
    }

    #[test]
    fn non_entity_roots_are_rejected() {
        let err = MomlDocument::from_xml(&parse("<model name=\"x\"/>").unwrap()).unwrap_err();
        assert!(matches!(err, MomlError::Structure(_)));
    }

    #[test]
    fn documents_without_composites_have_no_view() {
        let doc = r#"<entity name="w"><entity name="a" class="X"/></entity>"#;
        let doc = MomlDocument::from_xml(&parse(doc).unwrap()).unwrap();
        assert!(!doc.has_view());
    }
}
