//! Workflow specification + view → MOML.

use std::fmt::Write as _;

use wolves_workflow::{WorkflowSpec, WorkflowView};

use crate::model::{ATOMIC_CLASS, COMPOSITE_CLASS, RELATION_CLASS};
use crate::xml::escape_attribute;

/// Serialises a workflow (and optionally a view) as a MOML document that
/// [`crate::import::from_moml`] reads back.
///
/// When a view is given, each non-singleton composite task becomes a nested
/// composite entity; singleton composites are emitted as plain atomic
/// entities (this matches how view tools author MOML and keeps the output
/// readable).
#[must_use]
pub fn to_moml(spec: &WorkflowSpec, view: Option<&WorkflowView>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, r#"<?xml version="1.0" standalone="no"?>"#);
    let _ = writeln!(
        out,
        r#"<entity name="{}" class="{}">"#,
        escape_attribute(spec.name()),
        COMPOSITE_CLASS
    );

    let composite_of = |task| view.and_then(|v| v.composite_of(task));
    let mut emitted: std::collections::BTreeSet<wolves_workflow::TaskId> =
        std::collections::BTreeSet::new();

    if let Some(view) = view {
        for (_, composite) in view.composites() {
            if composite.is_singleton() {
                continue;
            }
            let _ = writeln!(
                out,
                r#"  <entity name="{}" class="{}">"#,
                escape_attribute(&composite.name),
                COMPOSITE_CLASS
            );
            for &member in composite.members() {
                if let Ok(task) = spec.task(member) {
                    let class = task
                        .params
                        .get("class")
                        .cloned()
                        .unwrap_or_else(|| ATOMIC_CLASS.to_owned());
                    let _ = writeln!(
                        out,
                        r#"    <entity name="{}" class="{}"/>"#,
                        escape_attribute(&task.name),
                        escape_attribute(&class)
                    );
                    emitted.insert(member);
                }
            }
            let _ = writeln!(out, "  </entity>");
        }
    }
    for (id, task) in spec.tasks() {
        if emitted.contains(&id) {
            continue;
        }
        // singleton composites and un-viewed tasks are emitted flat
        let _ = composite_of(id);
        let class = task
            .params
            .get("class")
            .cloned()
            .unwrap_or_else(|| ATOMIC_CLASS.to_owned());
        let _ = writeln!(
            out,
            r#"  <entity name="{}" class="{}"/>"#,
            escape_attribute(&task.name),
            escape_attribute(&class)
        );
    }

    for (index, (from, to)) in spec.dependencies().enumerate() {
        let _ = writeln!(
            out,
            r#"  <relation name="r{index}" class="{RELATION_CLASS}"/>"#
        );
        let from_name = spec.task(from).map(|t| t.name.clone()).unwrap_or_default();
        let to_name = spec.task(to).map(|t| t.name.clone()).unwrap_or_default();
        let _ = writeln!(
            out,
            r#"  <link port="{}.output" relation="r{index}"/>"#,
            escape_attribute(&from_name)
        );
        let _ = writeln!(
            out,
            r#"  <link port="{}.input" relation="r{index}"/>"#,
            escape_attribute(&to_name)
        );
    }
    let _ = writeln!(out, "</entity>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::from_moml;
    use wolves_repo::figure1;

    #[test]
    fn figure1_round_trips_through_moml() {
        let fixture = figure1();
        let moml = to_moml(&fixture.spec, Some(&fixture.view));
        let imported = from_moml(&moml).unwrap();
        assert_eq!(imported.spec.task_count(), fixture.spec.task_count());
        assert_eq!(
            imported.spec.dependency_count(),
            fixture.spec.dependency_count()
        );
        let view = imported.view.expect("view was exported");
        assert_eq!(view.composite_count(), fixture.view.composite_count());
        // the re-imported view is still unsound in exactly one composite
        let report = wolves_core::validate::validate(&imported.spec, &view);
        assert_eq!(report.unsound_composites().len(), 1);
    }

    #[test]
    fn spec_only_export_omits_composites() {
        let fixture = figure1();
        let moml = to_moml(&fixture.spec, None);
        assert!(moml.matches(COMPOSITE_CLASS).count() <= 1);
        let imported = from_moml(&moml).unwrap();
        assert!(imported.view.is_none());
        assert_eq!(imported.spec.task_count(), 12);
    }

    #[test]
    fn task_names_with_special_characters_survive() {
        let mut builder = wolves_workflow::WorkflowBuilder::new("weird & <wonderful>");
        let a = builder.task("select \"entries\"");
        let b = builder.task("align & format");
        builder.edge(a, b).unwrap();
        let spec = builder.build().unwrap();
        let moml = to_moml(&spec, None);
        let imported = from_moml(&moml).unwrap();
        assert_eq!(imported.spec.name(), "weird & <wonderful>");
        assert!(imported.spec.task_by_name("select \"entries\"").is_some());
        assert_eq!(imported.spec.dependency_count(), 1);
    }
}
