//! The `wolves` command-line application (paper Figure 2 as a CLI, plus the
//! serving layer of `wolves-service`).
//!
//! ```text
//! wolves show <file>                          summarise a workflow and view
//! wolves validate <file> [--naive <max-nodes>]  check view soundness
//! wolves correct <file> [--strategy weak|strong|optimal] [--out <file>]
//! wolves render <file>                        emit Graphviz DOT
//! wolves export <file> --format moml|text     convert between formats
//! wolves fixture figure1|figure3              print a paper fixture
//! wolves demo                                 run the Figure 1 walk-through
//! wolves serve [--addr A] [--shards N] [--threads N] [--data-dir D]
//! wolves recover <dir>                        offline check + replay report
//! wolves request <addr> <verb> …              talk to a running server
//! wolves mutate <addr> <id> <op> …            edit a registered workflow in place
//! wolves watch <addr> <id> [--mode M]         stream a workflow's committed changes
//! ```
//!
//! Unknown subcommands, unknown options and malformed arguments exit with
//! status 1 and print the usage text on stderr. `wolves serve` exits with
//! status 2 when it cannot bind its address and status 3 when a
//! `--data-dir` cannot be recovered (`wolves recover` shares status 3), so
//! supervisors can tell the failure modes apart. Input files ending in
//! `.xml`/`.moml` are parsed as MOML; everything else uses the native text
//! format (see `wolves-moml`).

use std::process::ExitCode;
use std::sync::Arc;

use wolves_cli::{
    correct_command, export_command, fixture_command, import_command, load_workflow,
    naive_check_command, parse_watch_mode, recover_command, remote_correct, remote_export,
    remote_heal, remote_metrics, remote_mutate, remote_provenance, remote_register,
    remote_shutdown, remote_snapshot, remote_stats, remote_validate, remote_validate_pipelined,
    remote_watch, render_command, show_command, validate_command,
};
use wolves_service::{
    open_data_dir, open_faulted_data_dir, serve_with_store, FaultPlan, RequestPolicy, ServerConfig,
    WorkflowId, WorkflowStore,
};

/// Exit code of malformed invocations and general operation failures.
const EXIT_GENERAL: u8 = 1;
/// Exit code when `wolves serve` cannot bind its address.
const EXIT_BIND: u8 = 2;
/// Exit code when a `--data-dir` cannot be recovered (corruption, replay
/// divergence, shard-count mismatch) — also used by `wolves recover`.
const EXIT_RECOVERY: u8 = 3;

/// A CLI failure: the message for stderr plus the process exit code.
#[derive(Debug)]
struct Failure {
    code: u8,
    message: String,
}

impl From<String> for Failure {
    fn from(message: String) -> Self {
        Failure {
            code: EXIT_GENERAL,
            message,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("error: {}", failure.message);
            ExitCode::from(failure.code)
        }
    }
}

/// `--flag value` pairs extracted by [`parse_args`].
type Flags = Vec<(String, String)>;

/// Splits `args` into positionals and `--flag value` pairs, rejecting flags
/// outside `allowed` — the malformed-argument guard of the CLI.
fn parse_args(
    command: &str,
    args: &[String],
    allowed: &[&str],
) -> Result<(Vec<String>, Flags), String> {
    let mut positionals = Vec::new();
    let mut flags = Vec::new();
    let mut index = 0;
    while index < args.len() {
        let arg = &args[index];
        if let Some(name) = arg.strip_prefix("--") {
            if !allowed.contains(&name) {
                return Err(format!(
                    "unknown option '--{name}' for '{command}'\n{USAGE}"
                ));
            }
            let value = args
                .get(index + 1)
                .ok_or_else(|| format!("option '--{name}' needs a value\n{USAGE}"))?;
            flags.push((name.to_owned(), value.clone()));
            index += 2;
        } else {
            positionals.push(arg.clone());
            index += 1;
        }
    }
    Ok((positionals, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn one_positional(command: &str, positionals: &[String]) -> Result<String, String> {
    match positionals {
        [single] => Ok(single.clone()),
        [] => Err(format!("'{command}' needs an input file\n{USAGE}")),
        _ => Err(format!(
            "'{command}' takes exactly one input file, got {}\n{USAGE}",
            positionals.len()
        )),
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("invalid {what} '{value}'\n{USAGE}"))
}

fn run(args: &[String]) -> Result<String, Failure> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    let rest = args.get(1..).unwrap_or_default();
    match command {
        // these two distinguish their failure modes through the exit code
        "serve" => serve_blocking(rest),
        "recover" => recover_blocking(rest),
        other => run_simple(other, rest).map_err(Failure::from),
    }
}

fn run_simple(command: &str, rest: &[String]) -> Result<String, String> {
    match command {
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        "demo" => {
            parse_args(command, rest, &[])?;
            Ok(demo())
        }
        "fixture" => {
            let (positionals, _) = parse_args(command, rest, &[])?;
            let name = match positionals.as_slice() {
                [single] => single.clone(),
                [] => return Err(format!("'fixture' needs a fixture name\n{USAGE}")),
                _ => {
                    return Err(format!(
                        "'fixture' takes exactly one fixture name, got {}\n{USAGE}",
                        positionals.len()
                    ))
                }
            };
            fixture_command(&name).map_err(|e| e.to_string())
        }
        "request" => request(rest),
        "mutate" => mutate(rest),
        "watch" => watch(rest),
        "metrics" => metrics(rest),
        "show" | "validate" | "correct" | "render" | "export" => {
            let allowed: &[&str] = match command {
                "correct" => &["strategy", "out"],
                "export" => &["format"],
                "validate" => &["naive"],
                _ => &[],
            };
            let (positionals, flags) = parse_args(command, rest, allowed)?;
            let path = one_positional(command, &positionals)?;
            let imported = load_workflow(&path).map_err(|e| e.to_string())?;
            let spec = imported.spec;
            let view = imported.view;
            match command {
                "show" => import_command(&path).map_err(|e| e.to_string()),
                "validate" => {
                    let view = view.ok_or("the input file defines no view to validate")?;
                    let mut output = validate_command(&spec, &view);
                    if let Some(limit) = flag(&flags, "naive") {
                        // the exponential path-enumeration check only runs
                        // under an explicit node budget, so a stray flag can
                        // never hang on a big workflow
                        let max_nodes: usize = parse_number(limit, "naive node limit")?;
                        output.push_str(&naive_check_command(&spec, &view, max_nodes));
                    }
                    Ok(output)
                }
                "correct" => {
                    let view = view.ok_or("the input file defines no view to correct")?;
                    let strategy = flag(&flags, "strategy").unwrap_or("strong");
                    let (corrected, mut output) =
                        correct_command(&spec, &view, strategy, None).map_err(|e| e.to_string())?;
                    if let Some(out_path) = flag(&flags, "out") {
                        let format = if out_path.ends_with(".xml") || out_path.ends_with(".moml") {
                            "moml"
                        } else {
                            "text"
                        };
                        let exported = export_command(&spec, Some(&corrected), format)
                            .map_err(|e| e.to_string())?;
                        std::fs::write(out_path, exported)
                            .map_err(|e| format!("cannot write '{out_path}': {e}"))?;
                        output.push_str(&format!("corrected view written to {out_path}\n"));
                    }
                    Ok(output)
                }
                "render" => Ok(render_command(&spec, view.as_ref())),
                "export" => {
                    let format = flag(&flags, "format").unwrap_or("text");
                    export_command(&spec, view.as_ref(), format).map_err(|e| e.to_string())
                }
                _ => unreachable!("outer match guards the command list"),
            }
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

/// `wolves serve`: starts the server and blocks until a client sends a
/// `shutdown` request. With `--data-dir` the store is recovered from (and
/// persisted to) the given directory.
///
/// Failure modes exit distinctly: recovery failures (corrupt or mismatched
/// data dir) with [`EXIT_RECOVERY`], bind failures with [`EXIT_BIND`] —
/// so supervisors can tell "fix the data" from "fix the address" apart.
fn serve_blocking(args: &[String]) -> Result<String, Failure> {
    let (positionals, flags) = parse_args(
        "serve",
        args,
        &["addr", "shards", "threads", "data-dir", "fault-plan", "io"],
    )?;
    if !positionals.is_empty() {
        return Err(format!("'serve' takes no positional arguments\n{USAGE}").into());
    }
    let explicit_shards = flag(&flags, "shards")
        .map(|v| parse_number::<usize>(v, "shard count"))
        .transpose()?;
    let data_dir = flag(&flags, "data-dir");
    // --fault-plan scripts deterministic storage failures into the durable
    // backend — the chaos-testing mode of the serving layer
    let fault_plan = flag(&flags, "fault-plan")
        .map(|text| FaultPlan::parse(text).map_err(|e| format!("{e}\n{USAGE}")))
        .transpose()?;
    if fault_plan.is_some() && data_dir.is_none() {
        return Err(format!(
            "'--fault-plan' injects storage faults and needs '--data-dir'\n{USAGE}"
        )
        .into());
    }
    let recovery = |message: String| Failure {
        code: EXIT_RECOVERY,
        message,
    };
    // recover (or initialise) the store before binding anything
    let (store, banner) = match data_dir {
        Some(dir) => {
            // an existing data dir pins its own shard layout; it is honoured
            // unless --shards explicitly disagrees (then the meta check
            // fails loudly)
            let root = std::path::Path::new(dir);
            let (store, report) = match fault_plan {
                Some(plan) => open_faulted_data_dir(root, explicit_shards, plan),
                None => open_data_dir(root, explicit_shards),
            }
            .map_err(|e| recovery(format!("cannot recover '{dir}': {e}")))?;
            let banner = format!("durable store in '{dir}': {report}");
            (Arc::new(store), banner)
        }
        None => {
            let shards = explicit_shards.unwrap_or(4);
            (
                Arc::new(WorkflowStore::new(shards)),
                "in-memory store (no --data-dir: state is lost on exit)\n".to_owned(),
            )
        }
    };
    let evented = match flag(&flags, "io") {
        None | Some("evented") => flag(&flags, "io").is_some(),
        Some("threads") => false,
        Some(other) => {
            return Err(format!("unknown '--io' mode '{other}' (evented|threads)\n{USAGE}").into())
        }
    };
    let config = ServerConfig {
        addr: flag(&flags, "addr").unwrap_or("127.0.0.1:7878").to_owned(),
        shards: store.shard_count(),
        workers: flag(&flags, "threads")
            .map(|v| parse_number(v, "thread count"))
            .transpose()?
            .unwrap_or(4),
        evented,
        ..ServerConfig::default()
    };
    let handle = serve_with_store(&config, store).map_err(|e| Failure {
        code: EXIT_BIND,
        message: format!("cannot bind '{}': {e}", config.addr),
    })?;
    print!("{banner}");
    println!(
        "wolves-service listening on {} ({} shards, {} worker threads, {} I/O)",
        handle.local_addr(),
        config.shards.max(1),
        config.workers.max(1),
        if config.evented && wolves_service::readiness_supported() {
            "evented"
        } else {
            "thread-pool"
        }
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    Ok("server stopped\n".to_owned())
}

/// `wolves recover <dir>`: offline integrity check + replay report; exits
/// with [`EXIT_RECOVERY`] when the directory cannot be recovered.
fn recover_blocking(args: &[String]) -> Result<String, Failure> {
    let (positionals, _) = parse_args("recover", args, &[])?;
    let [dir] = positionals.as_slice() else {
        return Err(format!("'recover' needs exactly one data directory\n{USAGE}").into());
    };
    recover_command(dir).map_err(|e| Failure {
        code: EXIT_RECOVERY,
        message: e.to_string(),
    })
}

/// Builds the retry policy of `--timeout-ms` / `--retries`, or `None` when
/// neither flag is given (plain single-attempt connection, no deadline).
fn request_policy(flags: &Flags) -> Result<Option<RequestPolicy>, String> {
    let timeout_ms = flag(flags, "timeout-ms")
        .map(|v| parse_number::<u64>(v, "timeout"))
        .transpose()?;
    let retries = flag(flags, "retries")
        .map(|v| parse_number::<u32>(v, "retry count"))
        .transpose()?;
    if timeout_ms.is_none() && retries.is_none() {
        return Ok(None);
    }
    let mut policy = RequestPolicy::with_timeout_ms(timeout_ms.unwrap_or(10_000));
    if let Some(retries) = retries {
        policy = policy.retries(retries);
    }
    Ok(Some(policy))
}

/// `wolves request <addr> <verb> …`: one-shot client requests.
fn request(args: &[String]) -> Result<String, String> {
    let (positionals, flags) = parse_args(
        "request",
        args,
        &[
            "strategy",
            "out",
            "view-version",
            "timeout-ms",
            "retries",
            "pipeline",
        ],
    )?;
    let [addr, verb, verb_args @ ..] = positionals.as_slice() else {
        return Err(format!("'request' needs an address and a verb\n{USAGE}"));
    };
    // each verb accepts only its own options (plus the policy flags every
    // verb shares); anything else is malformed
    let allowed_for_verb: &[&str] = match verb.as_str() {
        "validate" => &["view-version", "timeout-ms", "retries", "pipeline"],
        "correct" => &["strategy", "out", "timeout-ms", "retries"],
        "export" => &["out", "timeout-ms", "retries"],
        _ => &["timeout-ms", "retries"],
    };
    if let Some((name, _)) = flags
        .iter()
        .find(|(n, _)| !allowed_for_verb.contains(&n.as_str()))
    {
        return Err(format!(
            "unknown option '--{name}' for 'request {verb}'\n{USAGE}"
        ));
    }
    let parse_id = |text: Option<&String>| -> Result<WorkflowId, String> {
        let text = text.ok_or_else(|| format!("'{verb}' needs a workflow id\n{USAGE}"))?;
        parse_number::<u64>(text, "workflow id").map(WorkflowId)
    };
    let expect_args = |count: usize| -> Result<(), String> {
        if verb_args.len() == count {
            Ok(())
        } else {
            Err(format!(
                "'request {verb}' takes {count} argument(s), got {}\n{USAGE}",
                verb_args.len()
            ))
        }
    };
    let policy = request_policy(&flags)?;
    let policy = policy.as_ref();
    match verb.as_str() {
        "register" => {
            expect_args(1)?;
            remote_register(addr, &verb_args[0], policy).map_err(|e| e.to_string())
        }
        "validate" => {
            expect_args(1)?;
            let version = flag(&flags, "view-version")
                .map(|v| parse_number::<usize>(v, "view version"))
                .transpose()?;
            let workflow = parse_id(verb_args.first())?;
            match flag(&flags, "pipeline")
                .map(|v| parse_number::<usize>(v, "pipeline depth"))
                .transpose()?
            {
                // N validates coalesced into one write over one connection
                Some(depth) => remote_validate_pipelined(addr, workflow, version, depth, policy)
                    .map_err(|e| e.to_string()),
                None => remote_validate(addr, workflow, version, policy).map_err(|e| e.to_string()),
            }
        }
        "correct" => {
            expect_args(1)?;
            let strategy = flag(&flags, "strategy").unwrap_or("strong");
            remote_correct(
                addr,
                parse_id(verb_args.first())?,
                strategy,
                flag(&flags, "out"),
                policy,
            )
            .map_err(|e| e.to_string())
        }
        "provenance" => {
            expect_args(2)?;
            remote_provenance(addr, parse_id(verb_args.first())?, &verb_args[1], policy)
                .map_err(|e| e.to_string())
        }
        "export" => {
            expect_args(1)?;
            remote_export(
                addr,
                parse_id(verb_args.first())?,
                flag(&flags, "out"),
                policy,
            )
            .map_err(|e| e.to_string())
        }
        "snapshot" => {
            expect_args(0)?;
            remote_snapshot(addr, policy).map_err(|e| e.to_string())
        }
        "heal" => {
            expect_args(0)?;
            remote_heal(addr, policy).map_err(|e| e.to_string())
        }
        "stats" => {
            expect_args(0)?;
            remote_stats(addr, policy).map_err(|e| e.to_string())
        }
        "shutdown" => {
            expect_args(0)?;
            remote_shutdown(addr, policy).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown request verb '{other}'\n{USAGE}")),
    }
}

/// `wolves watch <addr> <id> [--mode tail|resync|<seq>] [--max-events N]`:
/// stream a workflow's committed changes to stdout.
fn watch(args: &[String]) -> Result<String, String> {
    let (positionals, flags) = parse_args("watch", args, &["mode", "max-events"])?;
    let [addr, id] = positionals.as_slice() else {
        return Err(format!(
            "'watch' needs an address and a workflow id\n{USAGE}"
        ));
    };
    let workflow = parse_number::<u64>(id, "workflow id").map(WorkflowId)?;
    let mode = flag(&flags, "mode")
        .map(parse_watch_mode)
        .transpose()
        .map_err(|e| e.to_string())?
        .unwrap_or(wolves_service::WatchMode::Tail);
    let max_events = flag(&flags, "max-events")
        .map(|v| parse_number::<usize>(v, "event count"))
        .transpose()?;
    // events stream to stdout as they arrive; the returned summary follows
    let mut stdout = std::io::stdout();
    remote_watch(addr, workflow, mode, max_events, &mut stdout).map_err(|e| e.to_string())
}

/// `wolves metrics <addr> [slow]`: scrape the server's telemetry.
fn metrics(args: &[String]) -> Result<String, String> {
    let (positionals, _) = parse_args("metrics", args, &[])?;
    let (addr, slow) = match positionals.as_slice() {
        [addr] => (addr, false),
        [addr, mode] if mode == "slow" => (addr, true),
        [_, mode] => {
            return Err(format!(
                "unknown metrics mode '{mode}' (expected 'slow')\n{USAGE}"
            ))
        }
        _ => return Err(format!("'metrics' needs a server address\n{USAGE}")),
    };
    remote_metrics(addr, slow).map_err(|e| e.to_string())
}

/// `wolves mutate <addr> <id> <op> …`: edit a registered workflow in place.
/// With `--timeout-ms`/`--retries` the edit retries idempotently through the
/// expected-epoch CAS protocol (a lost ack can never double-apply).
fn mutate(args: &[String]) -> Result<String, String> {
    let (positionals, flags) = parse_args("mutate", args, &["timeout-ms", "retries"])?;
    let [addr, id, op, op_args @ ..] = positionals.as_slice() else {
        return Err(format!(
            "'mutate' needs an address, a workflow id and an op\n{USAGE}"
        ));
    };
    let workflow = parse_number::<u64>(id, "workflow id").map(WorkflowId)?;
    let policy = request_policy(&flags)?;
    remote_mutate(addr, workflow, op, op_args, policy.as_ref()).map_err(|e| e.to_string())
}

/// The Figure 1 walk-through: what the paper's demonstration shows, end to
/// end, without needing an input file.
fn demo() -> String {
    let fixture = wolves_repo::figure1();
    let mut out = String::new();
    out.push_str(&show_command(&fixture.spec, Some(&fixture.view)));
    out.push('\n');
    out.push_str(&validate_command(&fixture.spec, &fixture.view));
    out.push('\n');
    let (corrected, report) =
        correct_command(&fixture.spec, &fixture.view, "strong", None).expect("demo correction");
    out.push_str(&report);
    out.push('\n');
    out.push_str(&validate_command(&fixture.spec, &corrected));
    out
}

const USAGE: &str = "\
WOLVES: detecting and resolving unsound workflow views

usage:
  wolves show <file>                          summarise a workflow and its view
  wolves validate <file> [--naive <max-nodes>]
                                              check the view for soundness; --naive
                                              additionally runs the exponential
                                              path-enumeration check, refused above
                                              the given task count
  wolves correct <file> [--strategy weak|strong|optimal] [--out <file>]
  wolves render <file>                        emit Graphviz DOT (unsound tasks highlighted)
  wolves export <file> --format moml|text     convert between formats
  wolves fixture figure1|figure3              print a paper fixture in the text format
  wolves demo                                 run the built-in Figure 1 walk-through

serving (wolves-service):
  wolves serve [--addr <host:port>] [--shards N] [--threads N] [--data-dir <dir>]
               [--fault-plan <plan>] [--io evented|threads]
                                              serve validation/correction requests
                                              (default 127.0.0.1:7878, 4 shards, 4 threads);
                                              --io evented runs the epoll readiness
                                              loop (Linux; idle connections cost no
                                              threads, pipelined frames batch), --io
                                              threads the portable thread pool (default);
                                              --data-dir makes the store durable:
                                              snapshot + write-ahead log per shard,
                                              recovered on restart (exit 2: bind
                                              failure, exit 3: recovery failure);
                                              --fault-plan scripts deterministic
                                              storage faults for chaos testing, e.g.
                                              'append-err=2,snap-err=1,seed=7'
                                              (append-err=N[xC] torn=N sync-err=N[xC]
                                              snap-err=N[xC] full=K slow=N:MS[xC] seed=S)
  wolves recover <dir>                        offline integrity check + replay report
                                              of a --data-dir (exit 3 on corruption)
  wolves request <addr> register <file>       register a workflow, prints its id
  wolves request <addr> validate <id> [--view-version N] [--pipeline <depth>]
                                              --pipeline issues <depth> validates in
                                              one coalesced write (one round trip)
                                              and reports the aggregate rate
  wolves request <addr> correct <id> [--strategy weak|strong|optimal] [--out <file>]
  wolves request <addr> provenance <id> <task>
  wolves request <addr> export <id> [--out <file>]
                                              download the current spec+view in
                                              registrable textfmt (client resync)
  wolves request <addr> snapshot              force a snapshot (compacts the WAL)
  wolves request <addr> heal                  re-open writes on degraded shards
                                              (each retries a compacting snapshot)
  wolves request <addr> stats
  wolves request <addr> shutdown
  every request verb also accepts [--timeout-ms N] [--retries N]: per-attempt
  socket timeout plus capped-exponential-backoff retries of transient failures
  (connection refused, timeouts, overloaded or degraded server)
  wolves metrics <addr> [slow]                scrape the server's telemetry as
                                              Prometheus-style text: per-verb and
                                              per-commit-stage latency histograms,
                                              WAL timings and watch gauges; 'slow'
                                              dumps the worst requests with their
                                              stage breakdowns
  wolves watch <addr> <id> [--mode tail|resync|<seq>] [--max-events N]
                                              stream the workflow's committed
                                              changes (ops, spec deltas, verdict
                                              transitions) as they happen; resync
                                              mode first prints a consistent
                                              export, then tails gap-free

interactive editing (mutation epochs):
  wolves mutate <addr> <id> add-task <name>
  wolves mutate <addr> <id> remove-task <name>
  wolves mutate <addr> <id> add-edge <from> <to>
  wolves mutate <addr> <id> remove-edge <from> <to>
  wolves mutate <addr> <id> split <composite> <a,b;c>
  wolves mutate <addr> <id> merge <new-name> <c1;c2>
                                              edit a registered workflow in place;
                                              only cached verdicts the edit could
                                              have changed are recomputed; with
                                              [--timeout-ms N] [--retries N] the
                                              edit retries idempotently through an
                                              expected-epoch compare-and-set
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_walkthrough_runs() {
        let output = run(&["demo".to_owned()]).unwrap();
        assert!(output.contains("UNSOUND"));
        assert!(output.contains("SOUND"));
    }

    #[test]
    fn unknown_commands_report_usage() {
        let err = run(&["frobnicate".to_owned()]).unwrap_err().message;
        assert!(err.contains("usage"));
        assert!(run(&[]).unwrap().contains("usage"));
    }

    #[test]
    fn malformed_arguments_report_usage() {
        let args = |list: &[&str]| list.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        // unknown option
        let err = run(&args(&["validate", "f.txt", "--bogus", "x"]))
            .unwrap_err()
            .message;
        assert!(err.contains("unknown option '--bogus'"));
        assert!(err.contains("usage"));
        // option without a value
        let err = run(&args(&["correct", "f.txt", "--strategy"]))
            .unwrap_err()
            .message;
        assert!(err.contains("needs a value"));
        // too many positionals
        let err = run(&args(&["validate", "a.txt", "b.txt"]))
            .unwrap_err()
            .message;
        assert!(err.contains("exactly one input file"));
        // request verb arity and id parsing
        let err = run(&args(&["request"])).unwrap_err().message;
        assert!(err.contains("needs an address"));
        let err = run(&args(&["request", "127.0.0.1:1", "validate", "nope"]))
            .unwrap_err()
            .message;
        assert!(err.contains("invalid workflow id"));
        let err = run(&args(&["request", "127.0.0.1:1", "frobnicate"]))
            .unwrap_err()
            .message;
        assert!(err.contains("unknown request verb"));
        // options foreign to the verb are rejected, not silently ignored
        let err = run(&args(&[
            "request",
            "127.0.0.1:1",
            "stats",
            "--strategy",
            "weak",
        ]))
        .unwrap_err()
        .message;
        assert!(err.contains("unknown option '--strategy' for 'request stats'"));
        let err = run(&args(&[
            "request",
            "127.0.0.1:1",
            "validate",
            "1",
            "--out",
            "f",
        ]))
        .unwrap_err()
        .message;
        assert!(err.contains("unknown option '--out' for 'request validate'"));
        // fixture arity errors name the actual problem
        let err = run(&args(&["fixture", "figure1", "figure3"]))
            .unwrap_err()
            .message;
        assert!(err.contains("exactly one fixture name"));
        // serve argument validation (no server is started on error paths)
        let err = run(&args(&["serve", "extra"])).unwrap_err().message;
        assert!(err.contains("no positional arguments"));
        let err = run(&args(&["serve", "--shards", "many"]))
            .unwrap_err()
            .message;
        assert!(err.contains("invalid shard count"));
        // fault plans only make sense against a durable backend…
        let err = run(&args(&["serve", "--fault-plan", "append-err=2"]))
            .unwrap_err()
            .message;
        assert!(err.contains("needs '--data-dir'"));
        // …and malformed plans are rejected before anything is opened
        let err = run(&args(&[
            "serve",
            "--fault-plan",
            "bogus",
            "--data-dir",
            "/tmp/never-created",
        ]))
        .unwrap_err()
        .message;
        assert!(err.contains("bad fault-plan directive"));
        // retry-policy flags validate their values
        let err = run(&args(&[
            "request",
            "127.0.0.1:1",
            "stats",
            "--timeout-ms",
            "lots",
        ]))
        .unwrap_err()
        .message;
        assert!(err.contains("invalid timeout"));
    }

    #[test]
    fn fixture_prints_parseable_text() {
        let output = run(&["fixture".to_owned(), "figure1".to_owned()]).unwrap();
        assert!(output.starts_with("workflow\tphylogenomic-inference"));
        assert!(run(&["fixture".to_owned(), "nope".to_owned()]).is_err());
        assert!(run(&["fixture".to_owned()]).is_err());
    }

    #[test]
    fn file_commands_round_trip_through_a_temp_file() {
        let fixture = wolves_repo::figure1();
        let text = wolves_moml::write_text_format(&fixture.spec, Some(&fixture.view));
        let path = std::env::temp_dir().join("wolves-cli-test.txt");
        std::fs::write(&path, text).unwrap();
        let path = path.to_string_lossy().to_string();
        let validated = run(&["validate".to_owned(), path.clone()]).unwrap();
        assert!(validated.contains("UNSOUND"));
        // --naive runs the path-enumeration cross-check under a node budget…
        let naive = run(&[
            "validate".to_owned(),
            path.clone(),
            "--naive".to_owned(),
            "60".to_owned(),
        ])
        .unwrap();
        assert!(naive.contains("naive definition check: 2 spurious"));
        // …and refuses budgets smaller than the workflow instead of hanging
        let refused = run(&[
            "validate".to_owned(),
            path.clone(),
            "--naive".to_owned(),
            "4".to_owned(),
        ])
        .unwrap();
        assert!(refused.contains("naive check refused"));
        assert!(run(&[
            "validate".to_owned(),
            path.clone(),
            "--naive".to_owned(),
            "lots".to_owned(),
        ])
        .unwrap_err()
        .message
        .contains("invalid naive node limit"));
        let corrected = run(&[
            "correct".to_owned(),
            path.clone(),
            "--strategy".to_owned(),
            "weak".to_owned(),
        ])
        .unwrap();
        assert!(corrected.contains("composite tasks: 7 -> 8"));
        let dot = run(&["render".to_owned(), path]).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn request_commands_drive_a_real_server() {
        // bind on an ephemeral port, then drive the whole verb set through
        // the same code paths the binary uses
        let handle = serve_with_store(
            &ServerConfig {
                shards: 2,
                workers: 4,
                ..ServerConfig::default()
            },
            Arc::new(WorkflowStore::new(2)),
        )
        .unwrap();
        let addr = handle.local_addr().to_string();
        let path = std::env::temp_dir().join("wolves-cli-main-request.txt");
        std::fs::write(
            &path,
            run(&["fixture".to_owned(), "figure1".to_owned()]).unwrap(),
        )
        .unwrap();
        let args = |list: &[&str]| list.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        let out = request(&args(&[&addr, "register", &path.to_string_lossy()])).unwrap();
        assert!(out.contains("registered workflow"));
        let out = request(&args(&[&addr, "validate", "1"])).unwrap();
        assert!(out.contains("UNSOUND"));
        let out = request(&args(&[&addr, "correct", "1", "--strategy", "strong"])).unwrap();
        assert!(out.contains("7 -> 8"));
        let out = request(&args(&[&addr, "validate", "1"])).unwrap();
        assert!(out.contains("SOUND"));
        let out = request(&args(&[&addr, "stats"])).unwrap();
        assert!(out.contains("correction samples"));
        // nothing is degraded, so heal is an answered no-op
        let out = request(&args(&[&addr, "heal"])).unwrap();
        assert!(out.contains("healed 0 shard(s)"));
        // the policy flags ride along on any verb
        let out = request(&args(&[
            &addr,
            "validate",
            "1",
            "--timeout-ms",
            "5000",
            "--retries",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("SOUND"));
        // the interactive editing loop over `wolves mutate`
        let out = mutate(&args(&[
            &addr,
            "1",
            "add-edge",
            "Select entries from DB",
            "Extract sequences",
        ]))
        .unwrap();
        assert!(out.contains("monotone-safe delta"), "got: {out}");
        let out = mutate(&args(&[
            &addr,
            "1",
            "merge",
            "Front end",
            "Retrieve entries (13);Annotations (14)",
        ]))
        .unwrap();
        assert!(out.contains("view-edit delta"));
        // a retrying mutate goes through the expected-epoch CAS protocol
        let out = mutate(&args(&[
            &addr,
            "1",
            "remove-edge",
            "Select entries from DB",
            "Extract sequences",
            "--retries",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("epoch 3"), "got: {out}");
        let out = request(&args(&[&addr, "validate", "1"])).unwrap();
        assert!(out.contains("SOUND"));
        // malformed mutate invocations
        assert!(mutate(&args(&[&addr])).unwrap_err().contains("usage"));
        assert!(mutate(&args(&[&addr, "1", "frobnicate"]))
            .unwrap_err()
            .contains("unknown mutate op"));
        assert!(mutate(&args(&[&addr, "1", "add-edge", "only-one"]))
            .unwrap_err()
            .contains("takes 2 argument(s)"));
        let out = request(&args(&[&addr, "shutdown"])).unwrap();
        assert!(out.contains("shutting down"));
        handle.join();
    }
}
