//! The `wolves` command-line application (paper Figure 2 as a CLI).
//!
//! ```text
//! wolves show <file>                          summarise a workflow and view
//! wolves validate <file>                      check view soundness
//! wolves correct <file> [--strategy weak|strong|optimal] [--out <file>]
//! wolves render <file>                        emit Graphviz DOT
//! wolves export <file> --format moml|text     convert between formats
//! wolves demo                                 run the Figure 1 walk-through
//! ```
//!
//! Input files ending in `.xml`/`.moml` are parsed as MOML; everything else
//! uses the native text format (see `wolves-moml`).

use std::process::ExitCode;

use wolves_cli::{
    correct_command, export_command, import_command, load_workflow, render_command, show_command,
    validate_command,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        "demo" => Ok(demo()),
        "show" | "validate" | "correct" | "render" | "export" => {
            let path = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| format!("'{command}' needs an input file\n{USAGE}"))?;
            let imported = load_workflow(path).map_err(|e| e.to_string())?;
            let spec = imported.spec;
            let view = imported.view;
            match command {
                "show" => import_command(path).map_err(|e| e.to_string()),
                "validate" => {
                    let view = view.ok_or("the input file defines no view to validate")?;
                    Ok(validate_command(&spec, &view))
                }
                "correct" => {
                    let view = view.ok_or("the input file defines no view to correct")?;
                    let strategy =
                        flag_value(args, "--strategy").unwrap_or_else(|| "strong".to_owned());
                    let (corrected, mut output) = correct_command(&spec, &view, &strategy, None)
                        .map_err(|e| e.to_string())?;
                    if let Some(out_path) = flag_value(args, "--out") {
                        let format = if out_path.ends_with(".xml") || out_path.ends_with(".moml") {
                            "moml"
                        } else {
                            "text"
                        };
                        let exported = export_command(&spec, Some(&corrected), format)
                            .map_err(|e| e.to_string())?;
                        std::fs::write(&out_path, exported)
                            .map_err(|e| format!("cannot write '{out_path}': {e}"))?;
                        output.push_str(&format!("corrected view written to {out_path}\n"));
                    }
                    Ok(output)
                }
                "render" => Ok(render_command(&spec, view.as_ref())),
                "export" => {
                    let format = flag_value(args, "--format").unwrap_or_else(|| "text".to_owned());
                    export_command(&spec, view.as_ref(), &format).map_err(|e| e.to_string())
                }
                _ => unreachable!("outer match guards the command list"),
            }
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

/// The Figure 1 walk-through: what the paper's demonstration shows, end to
/// end, without needing an input file.
fn demo() -> String {
    let fixture = wolves_repo::figure1();
    let mut out = String::new();
    out.push_str(&show_command(&fixture.spec, Some(&fixture.view)));
    out.push('\n');
    out.push_str(&validate_command(&fixture.spec, &fixture.view));
    out.push('\n');
    let (corrected, report) =
        correct_command(&fixture.spec, &fixture.view, "strong", None).expect("demo correction");
    out.push_str(&report);
    out.push('\n');
    out.push_str(&validate_command(&fixture.spec, &corrected));
    out
}

const USAGE: &str = "\
WOLVES: detecting and resolving unsound workflow views

usage:
  wolves show <file>                          summarise a workflow and its view
  wolves validate <file>                      check the view for soundness
  wolves correct <file> [--strategy weak|strong|optimal] [--out <file>]
  wolves render <file>                        emit Graphviz DOT (unsound tasks highlighted)
  wolves export <file> --format moml|text     convert between formats
  wolves demo                                 run the built-in Figure 1 walk-through
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_walkthrough_runs() {
        let output = run(&["demo".to_owned()]).unwrap();
        assert!(output.contains("UNSOUND"));
        assert!(output.contains("SOUND"));
    }

    #[test]
    fn unknown_commands_report_usage() {
        let err = run(&["frobnicate".to_owned()]).unwrap_err();
        assert!(err.contains("usage"));
        assert!(run(&[]).unwrap().contains("usage"));
    }

    #[test]
    fn file_commands_round_trip_through_a_temp_file() {
        let fixture = wolves_repo::figure1();
        let text = wolves_moml::write_text_format(&fixture.spec, Some(&fixture.view));
        let path = std::env::temp_dir().join("wolves-cli-test.txt");
        std::fs::write(&path, text).unwrap();
        let path = path.to_string_lossy().to_string();
        let validated = run(&["validate".to_owned(), path.clone()]).unwrap();
        assert!(validated.contains("UNSOUND"));
        let corrected = run(&[
            "correct".to_owned(),
            path.clone(),
            "--strategy".to_owned(),
            "weak".to_owned(),
        ])
        .unwrap();
        assert!(corrected.contains("composite tasks: 7 -> 8"));
        let dot = run(&["render".to_owned(), path]).unwrap();
        assert!(dot.starts_with("digraph"));
    }
}
