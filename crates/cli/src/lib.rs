//! # wolves-cli
//!
//! The WOLVES application: a command-line realisation of the demo
//! architecture (paper Figure 2). Each module of the figure maps to a
//! function in this crate:
//!
//! | Figure 2 module | Function |
//! |-----------------|----------|
//! | Import and Understand Workflow and View | [`import_command`], [`show_command`] |
//! | Workflow View Validator | [`validate_command`] |
//! | Workflow View Corrector | [`correct_command`] |
//! | Workflow View Feedback | [`merge_command`] |
//! | Workflow View Displayer | [`render_command`], [`show_command`] |
//!
//! Beyond Figure 2, the serving layer (`wolves-service`) is exposed through
//! `wolves serve` (see the binary) and the [`remote_register`],
//! [`remote_validate`], [`remote_correct`], [`remote_mutate`],
//! [`remote_provenance`], [`remote_export`], [`remote_snapshot`],
//! [`remote_heal`], [`remote_stats`] and [`remote_shutdown`] client
//! commands, plus [`fixture_command`] to materialise the paper fixtures as
//! input files. Every remote command takes an optional
//! [`RequestPolicy`] (the CLI's
//! `--timeout-ms`/`--retries` flags): with a policy, transient failures —
//! connection refused, timeouts, an overloaded or degraded server — are
//! retried with capped exponential backoff, and mutations retry
//! idempotently through expected-epoch CAS so a lost acknowledgement can
//! never double-apply an edit.
//! `wolves mutate` drives the interactive correction loop: registered
//! workflows are edited in place (add/remove task or edge, split or merge
//! composites) and the server invalidates only the cached verdicts the edit
//! could have changed; [`remote_export`] downloads the edited workflow back
//! in registrable form. [`recover_command`] (`wolves recover`) checks and
//! replays a `--data-dir` offline.
//!
//! The binary (`wolves`) parses arguments and dispatches to these functions;
//! they all return plain strings so they are directly testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use wolves_core::correct::{correct_view, Strategy};
use wolves_core::estimate::{EstimationRegistry, WorkloadClass};
use wolves_core::validate::{validate, validate_by_definition, validate_naive};
use wolves_graph::dot::{to_dot, DotOptions};
use wolves_moml::{from_moml, read_text_format, to_moml, write_text_format, ImportedWorkflow};
use wolves_service::{
    MutateOp, MutateOutcome, Request, RequestPolicy, Response, ServiceClient, ServiceError,
    WatchEvent, WatchMode, WorkflowId,
};
use wolves_workflow::render::{describe_spec, describe_view};
use wolves_workflow::{WorkflowSpec, WorkflowView};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// The input file could not be read.
    Io(String, std::io::Error),
    /// The input could not be parsed as MOML or the native text format.
    Parse(String),
    /// The requested operation failed.
    Operation(String),
    /// A request to a `wolves serve` instance failed.
    Service(ServiceError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(path, e) => write!(f, "cannot read '{path}': {e}"),
            CliError::Parse(message) => write!(f, "parse error: {message}"),
            CliError::Operation(message) => write!(f, "{message}"),
            CliError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl From<ServiceError> for CliError {
    fn from(e: ServiceError) -> Self {
        CliError::Service(e)
    }
}

impl std::error::Error for CliError {}

/// Loads a workflow (and optional view) from a file. Files ending in
/// `.xml` / `.moml` are parsed as MOML, everything else as the native text
/// format.
///
/// # Errors
/// Reports unreadable files and parse failures.
pub fn load_workflow(path: &str) -> Result<ImportedWorkflow, CliError> {
    let content = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_owned(), e))?;
    parse_workflow(path, &content)
}

/// Parses workflow content, choosing the format from the file name.
///
/// # Errors
/// Reports parse failures with the underlying message.
pub fn parse_workflow(path: &str, content: &str) -> Result<ImportedWorkflow, CliError> {
    let lower = path.to_ascii_lowercase();
    let imported = if lower.ends_with(".xml") || lower.ends_with(".moml") {
        from_moml(content)
    } else {
        read_text_format(content)
    };
    imported.map_err(|e| CliError::Parse(e.to_string()))
}

/// The *Import and Understand* module: loads a file and summarises it.
///
/// # Errors
/// Propagates load errors.
pub fn import_command(path: &str) -> Result<String, CliError> {
    let imported = load_workflow(path)?;
    Ok(show_command(&imported.spec, imported.view.as_ref()))
}

/// The *Displayer* module: a textual summary of a specification and view.
#[must_use]
pub fn show_command(spec: &WorkflowSpec, view: Option<&WorkflowView>) -> String {
    let mut out = describe_spec(spec);
    if let Some(view) = view {
        out.push('\n');
        out.push_str(&describe_view(spec, view));
    }
    out
}

/// The *Validator* module: reports per-composite soundness, highlighting the
/// unsound composite tasks the GUI would paint red, plus the definition-level
/// mismatches.
#[must_use]
pub fn validate_command(spec: &WorkflowSpec, view: &WorkflowView) -> String {
    let report = validate(spec, view);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "view '{}': {}",
        view.name(),
        if report.is_sound() {
            "SOUND"
        } else {
            "UNSOUND"
        }
    );
    for composite in report.reports() {
        if composite.verdict.is_sound() {
            let _ = writeln!(out, "  [sound]   {}", composite.name);
        } else {
            let _ = writeln!(
                out,
                "  [UNSOUND] {} ({} violating pairs)",
                composite.name,
                composite.verdict.witnesses.len()
            );
            for witness in &composite.verdict.witnesses {
                let input = spec
                    .task(witness.input)
                    .map(|t| t.name.clone())
                    .unwrap_or_default();
                let output = spec
                    .task(witness.output)
                    .map(|t| t.name.clone())
                    .unwrap_or_default();
                let _ = writeln!(out, "      no path: '{input}' -> '{output}'");
            }
        }
    }
    let definition = validate_by_definition(spec, view);
    let _ = writeln!(
        out,
        "definition check: {} spurious, {} missing view dependencies",
        definition.spurious.len(),
        definition.missing.len()
    );
    out
}

/// Cross-checks a view with the exponential path-enumeration check
/// (`wolves validate --naive`). The check is guarded by
/// [`validate_naive`]'s `max_nodes` refusal: oversized workflows are
/// declined with an explanatory message instead of hanging the process.
#[must_use]
pub fn naive_check_command(spec: &WorkflowSpec, view: &WorkflowView, max_nodes: usize) -> String {
    match validate_naive(spec, view, max_nodes) {
        Some(report) => format!(
            "naive definition check: {} spurious, {} missing view dependencies\n",
            report.spurious.len(),
            report.missing.len()
        ),
        None => format!(
            "naive check refused: {} tasks exceeds the --naive limit of {max_nodes} \
             (the check enumerates paths and is exponential; the polynomial checks \
             above already cover Definition 2.1)\n",
            spec.task_count()
        ),
    }
}

/// The *Corrector* module: corrects every unsound composite task with the
/// requested strategy and reports what changed, together with the estimated
/// cost the demo GUI would show (when an estimation registry is supplied).
///
/// # Errors
/// Reports unknown strategies and corrector failures.
pub fn correct_command(
    spec: &WorkflowSpec,
    view: &WorkflowView,
    strategy_name: &str,
    registry: Option<&EstimationRegistry>,
) -> Result<(WorkflowView, String), CliError> {
    let strategy = Strategy::parse(strategy_name)
        .ok_or_else(|| CliError::Operation(format!("unknown corrector '{strategy_name}'")))?;
    let mut out = String::new();
    if let Some(registry) = registry {
        let report = validate(spec, view);
        for composite_id in report.unsound_composites() {
            if let Ok(composite) = view.composite(composite_id) {
                let class = WorkloadClass::classify(spec, composite.members());
                if let Some(estimate) = registry.estimate(class, strategy) {
                    let _ = writeln!(
                        out,
                        "estimate for '{}': {:.1?} (quality {:.2}, {} past corrections)",
                        composite.name,
                        estimate.avg_elapsed,
                        estimate.avg_quality,
                        estimate.samples
                    );
                }
            }
        }
    }
    let corrector = strategy.corrector();
    let (corrected, report) = correct_view(spec, view, corrector.as_ref())
        .map_err(|e| CliError::Operation(e.to_string()))?;
    if report.was_already_sound() {
        let _ = writeln!(out, "view is already sound; nothing to correct");
    }
    for correction in &report.corrections {
        let _ = writeln!(
            out,
            "split '{}' ({} tasks) into {} sound composite tasks in {:.1?}",
            correction.original_name,
            correction.task_count,
            correction.replacements.len(),
            correction.elapsed
        );
    }
    let _ = writeln!(
        out,
        "composite tasks: {} -> {}",
        report.composites_before, report.composites_after
    );
    Ok((corrected, out))
}

/// The *Feedback* module: merges composite tasks ("Create Composite Task")
/// and reports whether the merged composite is sound.
///
/// # Errors
/// Reports unknown composite names.
pub fn merge_command(
    spec: &WorkflowSpec,
    view: &mut WorkflowView,
    composite_names: &[&str],
    merged_name: &str,
) -> Result<String, CliError> {
    let ids: Vec<_> = composite_names
        .iter()
        .map(|name| {
            view.composites()
                .find(|(_, c)| c.name == *name)
                .map(|(id, _)| id)
                .ok_or_else(|| CliError::Operation(format!("unknown composite '{name}'")))
        })
        .collect::<Result<_, _>>()?;
    let merged = view
        .merge_composites(&ids, merged_name)
        .map_err(|e| CliError::Operation(e.to_string()))?;
    let sound = wolves_core::is_sound(
        spec,
        view.composite(merged)
            .map_err(|e| CliError::Operation(e.to_string()))?
            .members(),
    );
    Ok(format!(
        "created composite '{merged_name}' from {} composites: {}\n",
        composite_names.len(),
        if sound {
            "sound"
        } else {
            "UNSOUND — run correct again"
        }
    ))
}

/// The *Displayer* module, graphical flavour: DOT output with one cluster per
/// composite task and unsound composites' members highlighted.
#[must_use]
pub fn render_command(spec: &WorkflowSpec, view: Option<&WorkflowView>) -> String {
    let mut options = DotOptions {
        graph_name: spec.name().to_owned(),
        ..DotOptions::default()
    };
    if let Some(view) = view {
        let report = validate(spec, view);
        let unsound = report.unsound_composites();
        for (id, composite) in view.composites() {
            options.clusters.push((
                composite.name.clone(),
                composite.members().iter().copied().collect(),
            ));
            if unsound.contains(&id) {
                options
                    .highlighted
                    .extend(composite.members().iter().copied());
            }
        }
    }
    to_dot(spec.graph(), &options, |_, task| task.name.clone())
}

/// Exports a workflow and view in the requested format (`"moml"` or
/// `"text"`).
///
/// # Errors
/// Reports unknown formats.
pub fn export_command(
    spec: &WorkflowSpec,
    view: Option<&WorkflowView>,
    format: &str,
) -> Result<String, CliError> {
    match format {
        "moml" | "xml" => Ok(to_moml(spec, view)),
        "text" | "txt" => Ok(write_text_format(spec, view)),
        other => Err(CliError::Operation(format!(
            "unknown export format '{other}'"
        ))),
    }
}

/// Materialises a paper fixture in the native text format, ready to be fed
/// back to `wolves validate` / `wolves request … register`.
///
/// # Errors
/// Reports unknown fixture names.
pub fn fixture_command(name: &str) -> Result<String, CliError> {
    match name {
        "figure1" => {
            let fixture = wolves_repo::figure1();
            Ok(write_text_format(&fixture.spec, Some(&fixture.view)))
        }
        "figure3" => {
            let fixture = wolves_repo::figure3();
            Ok(write_text_format(&fixture.spec, Some(&fixture.view)))
        }
        other => Err(CliError::Operation(format!(
            "unknown fixture '{other}' (expected figure1 or figure3)"
        ))),
    }
}

fn connect(addr: &str) -> Result<ServiceClient, CliError> {
    ServiceClient::connect(addr).map_err(CliError::from)
}

/// Runs `operation` against the server: once over a plain connection when
/// `policy` is `None`, or under the policy's per-attempt timeout and
/// transient-error retry loop (fresh connection per attempt) otherwise.
fn call_with<T>(
    addr: &str,
    policy: Option<&RequestPolicy>,
    mut operation: impl FnMut(&mut ServiceClient) -> Result<T, ServiceError>,
) -> Result<T, CliError> {
    match policy {
        Some(policy) => policy.call(addr, operation).map_err(CliError::from),
        None => operation(&mut connect(addr)?).map_err(CliError::from),
    }
}

/// `wolves request <addr> register <file>`: registers a workflow file with a
/// running server and prints the assigned id. Under a retry policy this is
/// at-least-once: a lost acknowledgement can leave a duplicate registration
/// (unlike `mutate`, which retries through an epoch CAS).
///
/// # Errors
/// Reports unreadable files and transport/server failures.
pub fn remote_register(
    addr: &str,
    path: &str,
    policy: Option<&RequestPolicy>,
) -> Result<String, CliError> {
    let imported = load_workflow(path)?;
    let payload = write_text_format(&imported.spec, imported.view.as_ref());
    let id = call_with(addr, policy, |client| client.register_text(&payload))?;
    Ok(format!("registered workflow {id}\n"))
}

/// `wolves request <addr> validate <id>`: validates a registered view and
/// prints the verdict, the view version and whether the shard cache answered.
///
/// # Errors
/// Reports transport/server failures.
pub fn remote_validate(
    addr: &str,
    workflow: WorkflowId,
    version: Option<usize>,
    policy: Option<&RequestPolicy>,
) -> Result<String, CliError> {
    let verdict = call_with(addr, policy, |client| client.validate(workflow, version))?;
    let mut out = format!(
        "workflow {workflow} view version {}: {} (cache {})\n",
        verdict.version,
        if verdict.sound { "SOUND" } else { "UNSOUND" },
        if verdict.cached { "hit" } else { "miss" }
    );
    for name in &verdict.unsound {
        let _ = writeln!(out, "  [UNSOUND] {name}");
    }
    Ok(out)
}

/// `wolves request <addr> validate <id> --pipeline <depth>`: issues `depth`
/// validates of the same workflow pipelined over one connection — every
/// request frame leaves in a single write before any response is read — and
/// prints the verdict plus the measured pipelined round-trip cost.
///
/// # Errors
/// Reports transport/server failures; per-request server errors are counted
/// and the first one is reported.
pub fn remote_validate_pipelined(
    addr: &str,
    workflow: WorkflowId,
    version: Option<usize>,
    depth: usize,
    policy: Option<&RequestPolicy>,
) -> Result<String, CliError> {
    let depth = depth.max(1);
    let started = std::time::Instant::now();
    let outcomes = call_with(addr, policy, |client| {
        let requests: Vec<Request> = (0..depth)
            .map(|_| Request::Validate { workflow, version })
            .collect();
        client.pipeline(&requests)
    })?;
    let elapsed = started.elapsed();
    let ok = outcomes.iter().filter(|outcome| outcome.is_ok()).count();
    let errors = depth - ok;
    let mut out = String::new();
    let verdict = outcomes.iter().rev().find_map(|outcome| match outcome {
        Ok(Response::Verdict(verdict)) => Some(verdict),
        _ => None,
    });
    match verdict {
        Some(verdict) => {
            let _ = writeln!(
                out,
                "workflow {workflow} view version {}: {} (cache {})",
                verdict.version,
                if verdict.sound { "SOUND" } else { "UNSOUND" },
                if verdict.cached { "hit" } else { "miss" }
            );
            for name in &verdict.unsound {
                let _ = writeln!(out, "  [UNSOUND] {name}");
            }
        }
        None => {
            if let Some(Err(first)) = outcomes.iter().find(|outcome| outcome.is_err()) {
                return Err(CliError::from(ServiceError::Protocol(format!(
                    "all {depth} pipelined validates failed; first error: {first}"
                ))));
            }
        }
    }
    let _ = writeln!(
        out,
        "pipelined {depth} validates in one write: {ok} ok, {errors} err, {:.3} ms total \
         ({:.0} req/s)",
        elapsed.as_secs_f64() * 1e3,
        ok as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    Ok(out)
}

/// `wolves request <addr> correct <id>`: corrects the current view with the
/// given strategy; the corrected view becomes the workflow's current version
/// server-side and is optionally written to `out_path`.
///
/// # Errors
/// Reports unknown strategies, unwritable output paths and transport/server
/// failures.
pub fn remote_correct(
    addr: &str,
    workflow: WorkflowId,
    strategy_name: &str,
    out_path: Option<&str>,
    policy: Option<&RequestPolicy>,
) -> Result<String, CliError> {
    let strategy = Strategy::parse(strategy_name)
        .ok_or_else(|| CliError::Operation(format!("unknown corrector '{strategy_name}'")))?;
    let corrected = call_with(addr, policy, |client| client.correct(workflow, strategy))?;
    let mut out = format!(
        "workflow {workflow}: composite tasks {} -> {} (now view version {})\n",
        corrected.composites_before, corrected.composites_after, corrected.version
    );
    if let Some(path) = out_path {
        std::fs::write(path, &corrected.payload)
            .map_err(|e| CliError::Operation(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "corrected view written to {path}");
    }
    Ok(out)
}

/// `wolves request <addr> provenance <id> <task>`: prints the view-level
/// provenance of the named task through the workflow's current view.
///
/// # Errors
/// Reports transport/server failures.
pub fn remote_provenance(
    addr: &str,
    workflow: WorkflowId,
    subject: &str,
    policy: Option<&RequestPolicy>,
) -> Result<String, CliError> {
    let tasks = call_with(addr, policy, |client| client.provenance(workflow, subject))?;
    let mut out = format!("provenance of '{subject}' ({} tasks):\n", tasks.len());
    for task in &tasks {
        let _ = writeln!(out, "  {task}");
    }
    Ok(out)
}

/// Parses the argument form of a mutation op, as accepted by
/// `wolves mutate <addr> <id> <op> …`:
///
/// ```text
/// add-task <name>            remove-task <name>
/// add-edge <from> <to>       remove-edge <from> <to>
/// split <composite> <a,b;c>  merge <new-name> <c1;c2>
/// ```
///
/// `split` parts are `;`-separated lists of `,`-separated member task
/// names; `merge` takes a `;`-separated composite list.
///
/// # Errors
/// Reports unknown ops and wrong arities.
pub fn parse_mutate_op(op: &str, args: &[String]) -> Result<MutateOp, CliError> {
    let arity = |want: usize| -> Result<(), CliError> {
        if args.len() == want {
            Ok(())
        } else {
            Err(CliError::Operation(format!(
                "mutate {op} takes {want} argument(s), got {}",
                args.len()
            )))
        }
    };
    match op {
        "add-task" => {
            arity(1)?;
            Ok(MutateOp::AddTask {
                name: args[0].clone(),
            })
        }
        "remove-task" => {
            arity(1)?;
            Ok(MutateOp::RemoveTask {
                name: args[0].clone(),
            })
        }
        "add-edge" => {
            arity(2)?;
            Ok(MutateOp::AddEdge {
                from: args[0].clone(),
                to: args[1].clone(),
            })
        }
        "remove-edge" => {
            arity(2)?;
            Ok(MutateOp::RemoveEdge {
                from: args[0].clone(),
                to: args[1].clone(),
            })
        }
        "split" => {
            arity(2)?;
            Ok(MutateOp::Split {
                composite: args[0].clone(),
                parts: args[1]
                    .split(';')
                    .map(|part| part.split(',').map(str::to_owned).collect())
                    .collect(),
            })
        }
        "merge" => {
            arity(2)?;
            Ok(MutateOp::Merge {
                name: args[0].clone(),
                composites: args[1].split(';').map(str::to_owned).collect(),
            })
        }
        other => Err(CliError::Operation(format!(
            "unknown mutate op '{other}' (expected add-task, remove-task, \
             add-edge, remove-edge, split or merge)"
        ))),
    }
}

/// `wolves mutate <addr> <id> <op> …`: edits a registered workflow in place
/// and reports the epoch, the delta class and how many cached composite
/// verdicts survived — the interactive correction loop without re-uploading
/// the workflow. Under a retry policy the edit is sent through the
/// expected-epoch CAS protocol: retries are idempotent, and a retry whose
/// earlier send applied (the acknowledgement was lost) reports the applied
/// epoch instead of double-applying.
///
/// # Errors
/// Reports malformed ops and transport/server failures.
pub fn remote_mutate(
    addr: &str,
    workflow: WorkflowId,
    op: &str,
    args: &[String],
    policy: Option<&RequestPolicy>,
) -> Result<String, CliError> {
    let op = parse_mutate_op(op, args)?;
    let outcome = match policy {
        Some(policy) => match policy.mutate(addr, workflow, op)? {
            MutateOutcome::Applied(outcome) => outcome,
            MutateOutcome::AppliedEarlier { epoch } => {
                return Ok(format!(
                    "workflow {workflow} epoch {epoch}: mutation already applied by an \
                     earlier attempt (its acknowledgement was lost in transit)\n"
                ));
            }
        },
        None => connect(addr)?.mutate(workflow, op)?,
    };
    Ok(format!(
        "workflow {workflow} epoch {}: {} delta; {} cached verdicts invalidated, \
         {} retained (view version {})\n",
        outcome.epoch, outcome.class, outcome.invalidated, outcome.retained, outcome.version
    ))
}

/// `wolves request <addr> export <id> [--out <file>]`: downloads the
/// workflow's current spec + view in registrable textfmt — the resync path
/// after server-side mutations and corrections.
///
/// # Errors
/// Reports unwritable output paths and transport/server failures.
pub fn remote_export(
    addr: &str,
    workflow: WorkflowId,
    out_path: Option<&str>,
    policy: Option<&RequestPolicy>,
) -> Result<String, CliError> {
    let payload = call_with(addr, policy, |client| client.export(workflow))?;
    match out_path {
        Some(path) => {
            std::fs::write(path, &payload)
                .map_err(|e| CliError::Operation(format!("cannot write '{path}': {e}")))?;
            Ok(format!("workflow {workflow} exported to {path}\n"))
        }
        None => Ok(payload),
    }
}

/// `wolves request <addr> snapshot`: forces a snapshot of every shard
/// (durable servers compact their write-ahead logs).
///
/// # Errors
/// Reports transport/server failures.
pub fn remote_snapshot(addr: &str, policy: Option<&RequestPolicy>) -> Result<String, CliError> {
    let shards = call_with(addr, policy, ServiceClient::snapshot)?;
    Ok(format!("snapshotted {shards} shard(s)\n"))
}

/// `wolves request <addr> heal`: asks a degraded server to re-open writes.
/// Each degraded shard retries a compacting snapshot of its current
/// in-memory state; shards whose storage still fails stay read-only and are
/// reported so the operator can retry after fixing the disk.
///
/// # Errors
/// Reports transport/server failures.
pub fn remote_heal(addr: &str, policy: Option<&RequestPolicy>) -> Result<String, CliError> {
    let (healed, still_degraded) = call_with(addr, policy, ServiceClient::heal)?;
    Ok(format!(
        "healed {healed} shard(s), {still_degraded} still degraded\n"
    ))
}

/// `wolves recover <dir>`: offline integrity check + replay report of a
/// durable data directory. Loads the directory's journal, replays it into a
/// store (through the same paths `wolves serve --data-dir` uses, including
/// the post-replay compaction snapshot) and reports what was recovered.
///
/// # Errors
/// Reports unreadable directories, corruption and replay divergence.
pub fn recover_command(dir: &str) -> Result<String, CliError> {
    let root = std::path::Path::new(dir);
    let recorded =
        wolves_service::FileBackend::recorded_shard_count(root).map_err(CliError::Service)?;
    let shards = recorded
        .ok_or_else(|| CliError::Operation(format!("'{dir}' is not a wolves data directory")))?;
    let (store, report) = wolves_service::open_data_dir(root, None).map_err(CliError::Service)?;
    let mut out = format!("data directory '{dir}' ({shards} shard(s)): intact\n{report}");
    let stats = store.stats();
    for shard in &stats.shards {
        let _ = writeln!(
            out,
            "shard {}: {} workflow(s)",
            shard.shard, shard.workflows
        );
    }
    let _ = writeln!(out, "log compacted; next start replays snapshots only");
    Ok(out)
}

/// `wolves request <addr> stats`: prints the per-shard serving counters.
///
/// # Errors
/// Reports transport/server failures.
pub fn remote_stats(addr: &str, policy: Option<&RequestPolicy>) -> Result<String, CliError> {
    let stats = call_with(addr, policy, ServiceClient::stats)?;
    let mut out = String::new();
    for shard in &stats.shards {
        let _ = writeln!(
            out,
            "shard {}: {} workflows, {} requests, validate cache {} hits / {} misses \
             (composites {} / {}), {:.1?} validating, {} snapshots published, \
             {} watcher(s) ({} dropped)",
            shard.shard,
            shard.workflows,
            shard.requests,
            shard.validate_hits,
            shard.validate_misses,
            shard.composite_hits,
            shard.composite_misses,
            std::time::Duration::from_nanos(shard.validate_ns),
            shard.snapshot_publishes,
            shard.active_watchers,
            shard.dropped_watchers
        );
    }
    let _ = writeln!(
        out,
        "total: {} workflows, {} requests, {} snapshot publishes, {} active / {} dropped \
         watchers; estimation registry holds {} correction samples",
        stats.workflows(),
        stats.requests(),
        stats.snapshot_publishes(),
        stats.active_watchers(),
        stats.dropped_watchers(),
        stats.registry_samples
    );
    Ok(out)
}

/// `wolves metrics <addr> [slow]`: fetches the server's telemetry — the
/// Prometheus-style text exposition (per-verb and per-commit-stage latency
/// histograms, serving counters, watch gauges, WAL timings), or the
/// slow-request dump when `slow` is set.
///
/// # Errors
/// Reports transport/server failures.
pub fn remote_metrics(addr: &str, slow: bool) -> Result<String, CliError> {
    let mut client = connect(addr)?;
    let mut text = if slow {
        client.metrics_slow()?
    } else {
        client.metrics()?
    };
    if !text.ends_with('\n') {
        text.push('\n');
    }
    Ok(text)
}

/// `wolves request <addr> shutdown`: asks the server to exit.
///
/// # Errors
/// Reports transport/server failures.
pub fn remote_shutdown(addr: &str, policy: Option<&RequestPolicy>) -> Result<String, CliError> {
    call_with(addr, policy, ServiceClient::shutdown)?;
    Ok("server shutting down\n".to_owned())
}

/// Parses the `--mode` argument of `wolves watch`.
///
/// # Errors
/// Reports unknown modes (expected `tail`, `resync` or a sequence number).
pub fn parse_watch_mode(mode: &str) -> Result<WatchMode, CliError> {
    match mode {
        "tail" => Ok(WatchMode::Tail),
        "resync" => Ok(WatchMode::Resync),
        other => other.parse::<u64>().map(WatchMode::From).map_err(|_| {
            CliError::Operation(format!(
                "unknown watch mode '{other}' (expected tail, resync or a sequence number)"
            ))
        }),
    }
}

/// `wolves watch <addr> <id> [--mode tail|resync|<seq>] [--max-events N]`:
/// subscribes to a workflow's committed changes and streams one line per
/// event to `sink` until `max_events` events arrived (`None` = until the
/// stream ends). A `resync` event ends the subscription: the gap-free tail
/// is gone and the caller must re-`export`. Returns a closing summary.
///
/// # Errors
/// Reports transport/server failures and sink write failures.
pub fn remote_watch(
    addr: &str,
    workflow: WorkflowId,
    mode: WatchMode,
    max_events: Option<usize>,
    sink: &mut dyn std::io::Write,
) -> Result<String, CliError> {
    let emit = |sink: &mut dyn std::io::Write, line: &str| -> Result<(), CliError> {
        writeln!(sink, "{line}").map_err(|e| CliError::Operation(format!("cannot write: {e}")))
    };
    let mut stream = connect(addr)?.watch(workflow, mode)?;
    let ack = stream.ack();
    emit(
        sink,
        &format!(
            "watching workflow {} from seq {} (epoch {})",
            ack.workflow, ack.seq, ack.epoch
        ),
    )?;
    if let Some(payload) = &ack.payload {
        emit(
            sink,
            &format!(
                "-- consistent export ({} lines) --",
                payload.lines().count()
            ),
        )?;
        for line in payload.lines() {
            emit(sink, line)?;
        }
        emit(sink, "-- end of export; tailing --")?;
    }
    let mut received = 0usize;
    let mut lagged = false;
    while max_events.map_or(true, |max| received < max) {
        match stream.next_event()? {
            WatchEvent::Mutated {
                seq, op, outcome, ..
            } => {
                emit(
                    sink,
                    &format!(
                        "seq {seq} epoch {}: mutated ({}) — {}; {} invalidated, {} retained",
                        outcome.epoch,
                        op.to_tail().replace('\t', " "),
                        outcome.class,
                        outcome.invalidated,
                        outcome.retained
                    ),
                )?;
            }
            WatchEvent::Corrected { seq, version, .. } => {
                emit(
                    sink,
                    &format!("seq {seq}: corrected — now view version {version}"),
                )?;
            }
            WatchEvent::Resync { seq, .. } => {
                emit(
                    sink,
                    &format!(
                        "seq {seq}: resync — the gap-free tail ended; \
                         re-export and re-subscribe"
                    ),
                )?;
                lagged = true;
                received += 1;
                break;
            }
        }
        received += 1;
    }
    // safe after a resync too: the server is back in request mode and
    // answers the unwatch idempotently
    stream.stop()?;
    Ok(format!(
        "watched workflow {workflow}: {received} event(s){}\n",
        if lagged { ", ended by resync" } else { "" }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_repo::figure1;

    #[test]
    fn validate_command_flags_composite_16() {
        let fixture = figure1();
        let output = validate_command(&fixture.spec, &fixture.view);
        assert!(output.contains("UNSOUND"));
        assert!(output.contains("Curate & align (16)"));
        assert!(output.contains("no path"));
        // two spurious view-level dependencies: 14 -> 18 and 15 -> 17
        assert!(output.contains("2 spurious"));
    }

    #[test]
    fn correct_command_reports_the_split() {
        let fixture = figure1();
        let (corrected, output) =
            correct_command(&fixture.spec, &fixture.view, "strong", None).unwrap();
        assert!(output.contains("split 'Curate & align (16)'"));
        assert!(output.contains("7 -> 8"));
        assert!(validate(&fixture.spec, &corrected).is_sound());
        assert!(correct_command(&fixture.spec, &fixture.view, "bogus", None).is_err());
    }

    #[test]
    fn merge_command_round_trips_through_names() {
        let fixture = figure1();
        let mut view = fixture.view.clone();
        let output = merge_command(
            &fixture.spec,
            &mut view,
            &["Retrieve entries (13)", "Annotations (14)"],
            "Front end",
        )
        .unwrap();
        assert!(output.contains("sound"));
        assert_eq!(view.composite_count(), 6);
        assert!(merge_command(&fixture.spec, &mut view, &["nope"], "x").is_err());
    }

    #[test]
    fn render_command_highlights_unsound_members() {
        let fixture = figure1();
        let dot = render_command(&fixture.spec, Some(&fixture.view));
        assert!(dot.contains("subgraph cluster_"));
        assert!(dot.contains("fillcolor"));
        assert!(dot.contains("Curate annotations"));
    }

    #[test]
    fn export_and_parse_round_trip() {
        let fixture = figure1();
        for format in ["moml", "text"] {
            let exported = export_command(&fixture.spec, Some(&fixture.view), format).unwrap();
            let suffix = if format == "moml" { "wf.xml" } else { "wf.txt" };
            let imported = parse_workflow(suffix, &exported).unwrap();
            assert_eq!(imported.spec.task_count(), 12);
            assert!(imported.view.is_some());
        }
        assert!(export_command(&fixture.spec, None, "yaml").is_err());
    }

    #[test]
    fn show_command_summarises_both_panels() {
        let fixture = figure1();
        let output = show_command(&fixture.spec, Some(&fixture.view));
        assert!(output.contains("workflow 'phylogenomic-inference'"));
        assert!(output.contains("view 'figure-1b'"));
    }

    #[test]
    fn fixture_command_round_trips_through_the_parser() {
        for name in ["figure1", "figure3"] {
            let text = fixture_command(name).unwrap();
            let imported = parse_workflow("fixture.txt", &text).unwrap();
            assert!(imported.view.is_some());
        }
        assert!(fixture_command("figure9").is_err());
    }

    #[test]
    fn remote_commands_drive_a_loopback_server() {
        let server = wolves_service::serve(&wolves_service::ServerConfig {
            shards: 2,
            workers: 2,
            ..wolves_service::ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        let path = std::env::temp_dir().join("wolves-cli-remote-test.txt");
        std::fs::write(&path, fixture_command("figure1").unwrap()).unwrap();
        let registered = remote_register(&addr, &path.to_string_lossy(), None).unwrap();
        assert!(registered.contains("registered workflow 1"));

        let id = WorkflowId(1);
        let unsound = remote_validate(&addr, id, None, None).unwrap();
        assert!(unsound.contains("UNSOUND"));
        assert!(unsound.contains("cache miss"));

        let corrected = remote_correct(&addr, id, "strong", None, None).unwrap();
        assert!(corrected.contains("7 -> 8"));
        assert!(remote_correct(&addr, id, "bogus", None, None).is_err());

        // the same verbs also run under a retry policy (fresh connection,
        // per-attempt timeout) with identical output
        let policy = RequestPolicy::with_timeout_ms(5_000);
        let sound = remote_validate(&addr, id, None, Some(&policy)).unwrap();
        assert!(sound.contains("SOUND"));

        let provenance = remote_provenance(&addr, id, "Format alignment", None).unwrap();
        assert!(provenance.contains("Create alignment"));

        let mutated = remote_mutate(
            &addr,
            id,
            "add-edge",
            &[
                "Check additional annotations".to_owned(),
                "Build phylo tree".to_owned(),
            ],
            None,
        )
        .unwrap();
        assert!(mutated.contains("monotone-safe delta"));
        assert!(mutated.contains("retained"));
        assert!(remote_mutate(&addr, id, "frobnicate", &[], None).is_err());

        // a policy-driven mutate goes through the epoch-CAS protocol
        let mutated = remote_mutate(
            &addr,
            id,
            "add-edge",
            &[
                "Select entries from DB".to_owned(),
                "Extract sequences".to_owned(),
            ],
            Some(&policy),
        )
        .unwrap();
        assert!(mutated.contains("epoch 2"), "got: {mutated}");

        let stats = remote_stats(&addr, None).unwrap();
        assert!(stats.contains("estimation registry holds 1 correction samples"));

        // no shard is degraded, so heal is a no-op that still answers
        let healed = remote_heal(&addr, None).unwrap();
        assert!(healed.contains("healed 0 shard(s), 0 still degraded"));

        // export returns the *mutated* workflow in registrable form: the
        // re-registered copy has the extra edge and the corrected view
        let exported = remote_export(&addr, id, None, None).unwrap();
        assert!(exported.contains("edge\tCheck additional annotations\tBuild phylo tree"));
        let reimported = parse_workflow("resync.txt", &exported).unwrap();
        assert_eq!(reimported.spec.dependency_count(), 14);
        assert_eq!(reimported.view.unwrap().composite_count(), 8);
        let out_path = std::env::temp_dir().join("wolves-cli-remote-export.txt");
        let written = remote_export(&addr, id, Some(&out_path.to_string_lossy()), None).unwrap();
        assert!(written.contains("exported to"));
        assert!(std::fs::read_to_string(&out_path)
            .unwrap()
            .contains("workflow\tphylogenomic-inference"));

        // snapshot is a no-op on the in-memory server but still answers
        let snapshotted = remote_snapshot(&addr, None).unwrap();
        assert!(snapshotted.contains("snapshotted 2 shard(s)"));

        // the telemetry scrape reflects the requests issued above
        let metrics = remote_metrics(&addr, false).unwrap();
        assert!(metrics.contains("# TYPE wolves_request_duration_seconds histogram"));
        assert!(metrics.contains("wolves_request_duration_seconds_count{verb=\"validate\"} 2"));
        assert!(metrics.contains("wolves_request_duration_seconds_count{verb=\"mutate\"} 2"));
        let slow = remote_metrics(&addr, true).unwrap();
        assert!(slow.starts_with("slow-requests\t"));
        assert!(slow.contains("slow\tvalidate\t"));

        // server errors come back as their typed variants, not opaque text
        assert!(matches!(
            remote_validate(&addr, WorkflowId(77), None, None),
            Err(CliError::Service(ServiceError::UnknownWorkflow(
                WorkflowId(77)
            )))
        ));

        assert!(remote_shutdown(&addr, None).is_ok());
        server.join();
    }

    #[test]
    fn remote_watch_streams_mutation_events() {
        let server = wolves_service::serve(&wolves_service::ServerConfig {
            shards: 2,
            workers: 2,
            ..wolves_service::ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let store = server.store();
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));

        // mutate only once the subscription is registered, so both events
        // land inside the watch window deterministically
        let mutator_store = std::sync::Arc::clone(&store);
        let mutator = std::thread::spawn(move || {
            while mutator_store.stats().active_watchers() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let edge = |from: &str, to: &str| MutateOp::AddEdge {
                from: from.to_owned(),
                to: to.to_owned(),
            };
            mutator_store
                .mutate(id, edge("Check additional annotations", "Build phylo tree"))
                .unwrap();
            mutator_store
                .mutate(id, edge("Select entries from DB", "Extract sequences"))
                .unwrap();
        });

        let mut sink = Vec::new();
        let summary = remote_watch(&addr, id, WatchMode::Tail, Some(2), &mut sink).unwrap();
        mutator.join().unwrap();
        assert!(summary.contains("2 event(s)"), "got: {summary}");
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("watching workflow 1 from seq 0"), "{text}");
        assert!(
            text.contains("mutated (add-edge Check additional annotations Build phylo tree)"),
            "{text}"
        );
        assert!(text.contains("seq 1 epoch 1"), "{text}");
        assert!(text.contains("seq 2 epoch 2"), "{text}");

        assert!(parse_watch_mode("resync").is_ok());
        assert!(matches!(parse_watch_mode("17"), Ok(WatchMode::From(17))));
        assert!(parse_watch_mode("sideways").is_err());

        server.shutdown();
    }
}
