//! # wolves-bench
//!
//! Experiment implementations reproducing the WOLVES evaluation (paper §3.1
//! and the claims of §1/§2). Each experiment returns structured rows so that
//! the `experiments` binary can print the tables recorded in
//! `EXPERIMENTS.md` and the integration tests can assert the qualitative
//! claims (who wins, by roughly what factor).
//!
//! | Experiment | Paper source | Function |
//! |------------|--------------|----------|
//! | E1 | Figure 1 + §1 motivating example | [`e1_figure1`] |
//! | E2 | Figure 3 (weak vs strong vs optimal) | [`e2_figure3`] |
//! | E3 | §3.1 quality comparison | [`e3_quality`] |
//! | E4 | §3.1 running-time comparison | [`e4_runtime`] |
//! | E5 | §2.1 validator comparison | [`e5_validator`] |
//! | E6 | §1 provenance correctness & efficiency | [`e6_provenance`] |
//! | E7 | §3.2 estimator accuracy | [`e7_estimator`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;
pub mod workloads;

pub use experiments::{
    e1_figure1, e2_figure3, e3_quality, e4_runtime, e5_validator, e6_provenance, e7_estimator,
};
pub use table::Table;
