//! Shared workload preparation for the experiments: extraction of unsound
//! composite tasks from the standard suite and size-controlled composites
//! for the scaling experiments.

use std::collections::BTreeSet;

use wolves_core::validate::validate;
use wolves_repo::suite::{standard_suite, CaseKind};
use wolves_repo::{generate, views};
use wolves_workflow::{TaskId, WorkflowSpec};

/// One composite task to split, together with the workflow it lives in.
#[derive(Debug)]
pub struct CompositeInstance {
    /// Short instance label (for tables).
    pub label: String,
    /// Workload family label ("expert", "auto", …).
    pub family: &'static str,
    /// The workflow specification.
    pub spec: WorkflowSpec,
    /// The members of the unsound composite task.
    pub members: BTreeSet<TaskId>,
}

impl CompositeInstance {
    /// Number of atomic tasks in the composite.
    #[must_use]
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Collects every unsound composite task from the standard suite whose size
/// lies within `min_size..=max_size`. These are the instances the quality
/// experiment (E3) evaluates.
#[must_use]
pub fn unsound_composites_from_suite(
    seeds: std::ops::Range<u64>,
    min_size: usize,
    max_size: usize,
) -> Vec<CompositeInstance> {
    let mut instances = Vec::new();
    for case in standard_suite(seeds) {
        let report = validate(&case.spec, &case.view);
        for composite_id in report.unsound_composites() {
            let composite = case
                .view
                .composite(composite_id)
                .expect("validator only reports existing composites");
            let size = composite.len();
            if size < min_size || size > max_size {
                continue;
            }
            instances.push(CompositeInstance {
                label: format!("{}/{}", case.name, composite.name),
                family: match case.kind {
                    CaseKind::Expert => "expert",
                    CaseKind::Auto => "auto",
                    CaseKind::Blocks => "blocks",
                    CaseKind::Random => "random",
                },
                spec: case.spec.clone(),
                members: composite.members().clone(),
            });
        }
    }
    instances
}

/// Builds one unsound composite with roughly `target_size` member tasks by
/// grouping a topological block of a generated layered workflow. Used by the
/// running-time experiment (E4), where the optimal corrector is only run on
/// the small sizes.
#[must_use]
pub fn sized_composite(target_size: usize, seed: u64) -> CompositeInstance {
    let spec = generate::layered_workflow(
        &generate::LayeredConfig::sized(target_size.saturating_mul(3).max(12)),
        seed,
    );
    let view = views::topological_block_view(&spec, target_size.max(2), "blocks")
        .expect("block view is a partition");
    let report = validate(&spec, &view);
    // pick the largest unsound composite; fall back to the largest composite
    // if (rarely) all blocks are sound
    let members = report
        .unsound_composites()
        .into_iter()
        .filter_map(|id| view.composite(id).ok())
        .max_by_key(|c| c.len())
        .map(|c| c.members().clone())
        .unwrap_or_else(|| {
            view.composites()
                .max_by_key(|(_, c)| c.len())
                .map(|(_, c)| c.members().clone())
                .expect("view has at least one composite")
        });
    CompositeInstance {
        label: format!("sized-{target_size}-seed{seed}"),
        family: "blocks",
        spec,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_extraction_respects_size_bounds() {
        let instances = unsound_composites_from_suite(0..2, 3, 10);
        assert!(!instances.is_empty());
        for instance in &instances {
            assert!(instance.size() >= 3 && instance.size() <= 10);
            assert!(!wolves_core::is_sound(&instance.spec, &instance.members));
        }
    }

    #[test]
    fn sized_composites_hit_the_requested_scale() {
        let instance = sized_composite(8, 3);
        assert!(instance.size() >= 4 && instance.size() <= 12);
    }
}
