//! Tiny plain-text table formatter used by the experiment harness.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .take(columns)
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = Table::new("demo", &["name", "value"]);
        table.push_row(vec!["short".into(), "1".into()]);
        table.push_row(vec!["a much longer name".into(), "2".into()]);
        let text = table.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("a much longer name  2"));
        assert_eq!(table.row_count(), 2);
        // header and separator lines are present
        assert_eq!(text.lines().count(), 1 + 1 + 1 + 2);
    }
}
