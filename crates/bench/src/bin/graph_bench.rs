//! Micro-benchmark for the reachability engine: matrix build, all-pairs
//! row queries and the two validator checks over a grid of task counts.
//!
//! Usage:
//!
//! ```text
//! graph_bench                     # full grid, JSON on stdout
//! graph_bench --quick             # smaller grid / fewer iterations (CI)
//! graph_bench --out BENCH_graph.json
//! ```
//!
//! The output is machine-readable JSON (handwritten — no serde in the
//! workspace), one row per (workload, task count) point, so the perf
//! trajectory of the graph substrate can be recorded across PRs alongside
//! `BENCH_service.json`.

use std::fmt::Write as _;
use std::time::Instant;

use wolves_core::validate::{validate, validate_by_definition};
use wolves_graph::reach::ReachMatrix;
use wolves_repo::generate::{layered_workflow, LayeredConfig};
use wolves_repo::views::topological_block_view;

struct Row {
    workload: &'static str,
    tasks: usize,
    edges: usize,
    iterations: usize,
    median_us: f64,
    min_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: graph_bench [--quick] [--out <file>]");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());

    let targets: Vec<usize> = if quick {
        vec![120, 480]
    } else {
        vec![120, 480, 960, 1920]
    };

    let mut rows = Vec::new();
    for &target in &targets {
        let spec = layered_workflow(&LayeredConfig::sized(target), 23);
        let view = topological_block_view(&spec, 4, "blocks").expect("layered spec is a DAG");
        let tasks = spec.task_count();
        let edges = spec.dependency_count();
        // warm the spec's cached reachability so the validator rows time the
        // checks themselves, not the first-touch matrix build
        let _ = spec.reachability();

        let iters = iterations_for(target, quick);
        rows.push(measure("graph/matrix_build", tasks, edges, iters, || {
            ReachMatrix::build(spec.graph()).unwrap().node_bound()
        }));
        let matrix = ReachMatrix::build(spec.graph()).unwrap();
        let nodes: Vec<_> = spec.graph().node_ids().collect();
        rows.push(measure(
            "graph/all_pairs_queries",
            tasks,
            edges,
            iters,
            || {
                let mut reachable_pairs = 0usize;
                for &u in &nodes {
                    for &v in &nodes {
                        if matrix.reachable(u, v) {
                            reachable_pairs += 1;
                        }
                    }
                }
                reachable_pairs
            },
        ));
        rows.push(measure(
            "validator/proposition_2_1",
            tasks,
            edges,
            iters,
            || usize::from(validate(&spec, &view).is_sound()),
        ));
        rows.push(measure(
            "validator/definition_closure",
            tasks,
            edges,
            iters.min(40),
            || usize::from(validate_by_definition(&spec, &view).is_sound()),
        ));
    }

    let json = render_json(&rows, quick);
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    println!("{json}");
}

fn iterations_for(target: usize, quick: bool) -> usize {
    let base = match target {
        0..=200 => 200,
        201..=600 => 80,
        601..=1200 => 30,
        _ => 10,
    };
    if quick {
        (base / 4).max(5)
    } else {
        base
    }
}

/// Times `body` for `iterations` runs (after 2 warm-ups) and reports the
/// median and minimum wall-clock time per run in microseconds. A black-box
/// accumulator keeps the optimiser from discarding the work.
fn measure(
    workload: &'static str,
    tasks: usize,
    edges: usize,
    iterations: usize,
    mut body: impl FnMut() -> usize,
) -> Row {
    let mut sink = 0usize;
    for _ in 0..2 {
        sink = sink.wrapping_add(body());
    }
    let mut samples_us: Vec<f64> = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let start = Instant::now();
        sink = sink.wrapping_add(body());
        samples_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    // prevent dead-code elimination of the measured bodies
    assert!(sink != usize::MAX, "benchmark sink overflowed");
    samples_us.sort_by(|a, b| a.total_cmp(b));
    let median_us = samples_us[samples_us.len() / 2];
    let min_us = samples_us[0];
    eprintln!("{workload:>32} @ {tasks:>5} tasks: median {median_us:>10.1} µs (min {min_us:.1})");
    Row {
        workload,
        tasks,
        edges,
        iterations,
        median_us,
        min_us,
    }
}

fn render_json(rows: &[Row], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"benchmark\": \"wolves-graph reachability engine\","
    );
    let _ = writeln!(
        out,
        "  \"workload\": \"matrix build + row queries + validator checks\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"tasks\": {}, \"edges\": {}, \"iterations\": {}, \
             \"median_us\": {:.2}, \"min_us\": {:.2}}}",
            row.workload, row.tasks, row.edges, row.iterations, row.median_us, row.min_us
        );
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
