//! Micro-benchmark for the reachability engine: matrix build, all-pairs
//! row queries, the two validator checks and the **mutation workload**
//! (incremental single-edge edits vs from-scratch rebuilds) over a grid of
//! task counts.
//!
//! Usage:
//!
//! ```text
//! graph_bench                     # full grid, JSON on stdout
//! graph_bench --quick             # smaller grid / fewer iterations (CI)
//! graph_bench --out BENCH_graph.json
//! graph_bench --mutation-out BENCH_mutation.json
//! ```
//!
//! The output is machine-readable JSON (handwritten — no serde in the
//! workspace), one row per (workload, task count) point, so the perf
//! trajectory of the graph substrate can be recorded across PRs alongside
//! `BENCH_service.json`. The mutation workload applies N random edge
//! inserts to a live spec — and then takes the same edges back out: the
//! `*_incremental` rows maintain the matrix / definition index in place
//! (`ReachMatrix::insert_edge` / `ReachMatrix::remove_edge`,
//! `DefinitionIndex::refresh` over the dirty rows), the `*_rebuild` rows
//! pay the full pipeline per edit — the speedup between the two is the
//! headline number of the mutation-epoch engine and is emitted into the
//! mutation JSON alongside the raw rows. A `guard` object pins the
//! removal-vs-insert latency ratio at the ~1941-task grid point for CI.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wolves_core::validate::{validate, validate_by_definition, DefinitionIndex};
use wolves_graph::reach::ReachMatrix;
use wolves_repo::generate::{layered_workflow, LayeredConfig};
use wolves_repo::views::topological_block_view;
use wolves_workflow::{DataDependency, SpecMutation, TaskId, WorkflowSpec};

struct Row {
    workload: &'static str,
    tasks: usize,
    edges: usize,
    iterations: usize,
    median_us: f64,
    min_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: graph_bench [--quick] [--out <file>] [--mutation-out <file>]");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let mutation_out_path: Option<String> = args
        .iter()
        .position(|a| a == "--mutation-out")
        .and_then(|i| args.get(i + 1).cloned());

    // quick (CI) keeps the 1920 target so the perf guard always measures
    // the ~1941-task point; the full grid adds a ~10k-task point
    let targets: Vec<usize> = if quick {
        vec![120, 480, 1920]
    } else {
        vec![120, 480, 960, 1920, 10080]
    };

    let mut rows = Vec::new();
    for &target in &targets {
        let spec = layered_workflow(&LayeredConfig::sized(target), 23);
        let view = topological_block_view(&spec, 4, "blocks").expect("layered spec is a DAG");
        let tasks = spec.task_count();
        let edges = spec.dependency_count();
        // warm the spec's cached reachability so the validator rows time the
        // checks themselves, not the first-touch matrix build
        let _ = spec.reachability();

        let iters = iterations_for(target, quick);
        rows.push(measure("graph/matrix_build", tasks, edges, iters, || {
            ReachMatrix::build(spec.graph()).unwrap().node_bound()
        }));
        let matrix = ReachMatrix::build(spec.graph()).unwrap();
        // above ~2048 nodes the n² probe loop would dwarf everything else;
        // a fixed-size node window keeps the row comparable across points
        let mut nodes: Vec<_> = spec.graph().node_ids().collect();
        nodes.truncate(2048);
        rows.push(measure(
            "graph/all_pairs_queries",
            tasks,
            edges,
            iters,
            || {
                let mut reachable_pairs = 0usize;
                for &u in &nodes {
                    for &v in &nodes {
                        if matrix.reachable(u, v) {
                            reachable_pairs += 1;
                        }
                    }
                }
                reachable_pairs
            },
        ));
        rows.push(measure(
            "validator/proposition_2_1",
            tasks,
            edges,
            iters,
            || usize::from(validate(&spec, &view).is_sound()),
        ));
        rows.push(measure(
            "validator/definition_closure",
            tasks,
            edges,
            iters.min(40),
            || usize::from(validate_by_definition(&spec, &view).is_sound()),
        ));
    }

    // the mutation workload pays a full matrix rebuild per edit for its
    // *_rebuild rows; only run it when its JSON is actually requested
    if let Some(path) = mutation_out_path {
        let mutation_rows = mutation_workload(&targets, quick);
        let mutation_json = render_mutation_json(&mutation_rows, quick);
        if let Err(e) = std::fs::write(&path, &mutation_json) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    let json = render_json(&rows, quick);
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    println!("{json}");
}

/// Deterministic low→high candidate edges absent from `spec` — enough for
/// `needed` edits plus the measurement warm-ups, shared by every mutation
/// workload so incremental and rebuild time identical edit sequences.
fn candidate_edges(spec: &WorkflowSpec, needed: usize) -> Vec<(TaskId, TaskId)> {
    let nodes: Vec<TaskId> = spec.task_ids().collect();
    let mut existing: HashSet<(usize, usize)> = spec
        .dependencies()
        .map(|(a, b)| (a.index(), b.index()))
        .collect();
    let mut rng = StdRng::seed_from_u64(0xD1B5_4A32 ^ nodes.len() as u64);
    let mut candidates = Vec::with_capacity(needed);
    while candidates.len() < needed {
        let a = rng.gen_range(0..nodes.len());
        let b = rng.gen_range(0..nodes.len());
        if a == b {
            continue;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if existing.insert((lo, hi)) {
            candidates.push((nodes[lo], nodes[hi]));
        }
    }
    candidates
}

/// The mutation workload: N single-edge inserts per task count, incremental
/// maintenance vs full rebuild, for both the reachability matrix and the
/// definition-level validator.
fn mutation_workload(targets: &[usize], quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    for &target in targets {
        let spec = layered_workflow(&LayeredConfig::sized(target), 23);
        let view = topological_block_view(&spec, 4, "blocks").expect("layered spec is a DAG");
        let tasks = spec.task_count();
        let edges = spec.dependency_count();
        let iters = iterations_for(target, quick);
        let candidates = candidate_edges(&spec, iters + 2);

        // incremental: one live matrix absorbs a fresh edge per iteration
        let mut matrix = ReachMatrix::build(spec.graph()).unwrap();
        let mut cursor = 0usize;
        rows.push(measure(
            "mutation/edge_insert_incremental",
            tasks,
            edges,
            iters,
            || {
                let (from, to) = candidates[cursor];
                cursor += 1;
                matrix.insert_edge(from, to).unwrap();
                matrix.comp_count()
            },
        ));

        // rebuild: the same edge sequence, full matrix build per edit
        let mut graph = spec.graph().clone();
        let mut cursor = 0usize;
        rows.push(measure(
            "mutation/edge_insert_rebuild",
            tasks,
            edges,
            iters,
            || {
                let (from, to) = candidates[cursor];
                cursor += 1;
                graph
                    .add_edge_unique(from, to, DataDependency::unnamed())
                    .unwrap();
                ReachMatrix::build(&graph).unwrap().node_bound()
            },
        ));

        // removal: pre-insert the same candidate edges, then take them back
        // out LIFO — the decremental in-place maintenance vs a full matrix
        // rebuild per removal. The dense layered closure implies most
        // candidates, so the median exercises the still-reachable fast path
        // exactly like the insert median exercises the closure no-op.
        let mut inc_graph = spec.graph().clone();
        for &(from, to) in &candidates {
            inc_graph
                .add_edge_unique(from, to, DataDependency::unnamed())
                .unwrap();
        }
        let mut matrix = ReachMatrix::build(&inc_graph).unwrap();
        let mut stack = candidates.clone();
        rows.push(measure(
            "mutation/edge_remove_incremental",
            tasks,
            edges,
            iters,
            || {
                let (from, to) = stack.pop().expect("enough candidates");
                let edge = inc_graph.find_edge(from, to).expect("edge was inserted");
                inc_graph.remove_edge(edge).unwrap();
                matrix.remove_edge(&inc_graph, from, to).unwrap();
                matrix.comp_count()
            },
        ));

        let mut rebuild_graph = spec.graph().clone();
        for &(from, to) in &candidates {
            rebuild_graph
                .add_edge_unique(from, to, DataDependency::unnamed())
                .unwrap();
        }
        let mut stack = candidates.clone();
        rows.push(measure(
            "mutation/edge_remove_rebuild",
            tasks,
            edges,
            iters,
            || {
                let (from, to) = stack.pop().expect("enough candidates");
                let edge = rebuild_graph
                    .find_edge(from, to)
                    .expect("edge was inserted");
                rebuild_graph.remove_edge(edge).unwrap();
                ReachMatrix::build(&rebuild_graph).unwrap().node_bound()
            },
        ));

        // definition-level validation after each edit: dirty-row refresh of
        // a DefinitionIndex vs a from-scratch validate_by_definition
        let definition_iters = iters.min(40);
        let mut inc_spec = spec.clone();
        let _ = inc_spec.reachability();
        let _ = inc_spec.take_dirty();
        let mut index = DefinitionIndex::new(&inc_spec, &view);
        let mut cursor = 0usize;
        rows.push(measure(
            "mutation/definition_refresh",
            tasks,
            edges,
            definition_iters,
            || {
                let (from, to) = candidates[cursor];
                cursor += 1;
                inc_spec
                    .apply(SpecMutation::AddDependency { from, to })
                    .unwrap();
                let dirty = inc_spec.take_dirty();
                usize::from(index.refresh(&inc_spec, &view, &dirty).is_sound())
            },
        ));

        let mut rebuild_spec = spec.clone();
        let _ = rebuild_spec.reachability();
        let mut cursor = 0usize;
        rows.push(measure(
            "mutation/definition_rebuild",
            tasks,
            edges,
            definition_iters,
            || {
                let (from, to) = candidates[cursor];
                cursor += 1;
                rebuild_spec
                    .apply(SpecMutation::AddDependency { from, to })
                    .unwrap();
                usize::from(validate_by_definition(&rebuild_spec, &view).is_sound())
            },
        ));
    }
    rows
}

/// Renders the mutation rows plus derived incremental-vs-rebuild speedups.
fn render_mutation_json(rows: &[Row], quick: bool) -> String {
    let median_of = |workload: &str, tasks: usize| -> Option<f64> {
        rows.iter()
            .find(|r| r.workload == workload && r.tasks == tasks)
            .map(|r| r.median_us)
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"wolves mutation epochs\",");
    let _ = writeln!(
        out,
        "  \"workload\": \"single-edge inserts: incremental maintenance vs full rebuild\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"tasks\": {}, \"edges\": {}, \"iterations\": {}, \
             \"median_us\": {:.2}, \"min_us\": {:.2}}}",
            row.workload, row.tasks, row.edges, row.iterations, row.median_us, row.min_us
        );
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    let task_counts: Vec<usize> = {
        let mut seen = Vec::new();
        for row in rows {
            if !seen.contains(&row.tasks) {
                seen.push(row.tasks);
            }
        }
        seen
    };
    let mut entries = Vec::new();
    for &tasks in &task_counts {
        for pair in ["edge_insert", "edge_remove", "definition"] {
            let incremental = median_of(
                &format!("mutation/{pair}_{}", incremental_suffix(pair)),
                tasks,
            );
            let rebuild = median_of(&format!("mutation/{pair}_rebuild"), tasks);
            if let (Some(incremental), Some(rebuild)) = (incremental, rebuild) {
                entries.push(format!(
                    "    {{\"workload\": \"{pair}\", \"tasks\": {tasks}, \
                     \"incremental_median_us\": {incremental:.2}, \
                     \"rebuild_median_us\": {rebuild:.2}, \"speedup\": {:.1}}}",
                    rebuild / incremental.max(f64::MIN_POSITIVE)
                ));
            }
        }
    }
    out.push_str(&entries.join(",\n"));
    out.push('\n');
    out.push_str("  ],\n");
    // CI perf guard: single-edge removal must stay within 10x of insert at
    // the ~1941-task point (the largest grid point at or below 2048 tasks,
    // present in both quick and full grids)
    let guard_tasks = task_counts.iter().copied().filter(|&t| t <= 2048).max();
    let guard = guard_tasks.and_then(|tasks| {
        let insert = median_of("mutation/edge_insert_incremental", tasks)?;
        let remove = median_of("mutation/edge_remove_incremental", tasks)?;
        Some((tasks, insert, remove))
    });
    match guard {
        Some((tasks, insert, remove)) => {
            let ratio = remove / insert.max(f64::MIN_POSITIVE);
            let _ = writeln!(out, "  \"guard\": {{");
            let _ = writeln!(out, "    \"tasks\": {tasks},");
            let _ = writeln!(out, "    \"insert_median_us\": {insert:.2},");
            let _ = writeln!(out, "    \"remove_median_us\": {remove:.2},");
            let _ = writeln!(out, "    \"remove_over_insert\": {ratio:.2},");
            let _ = writeln!(out, "    \"within_10x\": {}", ratio <= 10.0);
            let _ = writeln!(out, "  }}");
        }
        None => {
            let _ = writeln!(out, "  \"guard\": null");
        }
    }
    out.push_str("}\n");
    out
}

/// The incremental row's suffix for a speedup pair (`edge_insert` /
/// `edge_remove` rows are named `_incremental`, `definition` rows
/// `_refresh`).
fn incremental_suffix(pair: &str) -> &'static str {
    if pair == "definition" {
        "refresh"
    } else {
        "incremental"
    }
}

fn iterations_for(target: usize, quick: bool) -> usize {
    let base = match target {
        0..=200 => 200,
        201..=600 => 80,
        601..=1200 => 30,
        1201..=4000 => 10,
        _ => 6,
    };
    if quick {
        (base / 4).max(5)
    } else {
        base
    }
}

/// Times `body` for `iterations` runs (after 2 warm-ups) and reports the
/// median and minimum wall-clock time per run in microseconds. A black-box
/// accumulator keeps the optimiser from discarding the work.
fn measure(
    workload: &'static str,
    tasks: usize,
    edges: usize,
    iterations: usize,
    mut body: impl FnMut() -> usize,
) -> Row {
    let mut sink = 0usize;
    for _ in 0..2 {
        sink = sink.wrapping_add(body());
    }
    let mut samples_us: Vec<f64> = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let start = Instant::now();
        sink = sink.wrapping_add(body());
        samples_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    // prevent dead-code elimination of the measured bodies
    assert!(sink != usize::MAX, "benchmark sink overflowed");
    samples_us.sort_by(|a, b| a.total_cmp(b));
    let median_us = samples_us[samples_us.len() / 2];
    let min_us = samples_us[0];
    eprintln!("{workload:>32} @ {tasks:>5} tasks: median {median_us:>10.1} µs (min {min_us:.1})");
    Row {
        workload,
        tasks,
        edges,
        iterations,
        median_us,
        min_us,
    }
}

fn render_json(rows: &[Row], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"benchmark\": \"wolves-graph reachability engine\","
    );
    let _ = writeln!(
        out,
        "  \"workload\": \"matrix build + row queries + validator checks\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"tasks\": {}, \"edges\": {}, \"iterations\": {}, \
             \"median_us\": {:.2}, \"min_us\": {:.2}}}",
            row.workload, row.tasks, row.edges, row.iterations, row.median_us, row.min_us
        );
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
