//! Experiment harness: regenerates every table recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! experiments              # run all experiments with the default scale
//! experiments --exp e3     # run a single experiment
//! experiments --quick      # smaller seeds / sizes (used by CI smoke runs)
//! ```

use wolves_bench::{
    e1_figure1, e2_figure3, e3_quality, e4_runtime, e5_validator, e6_provenance, e7_estimator,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1).cloned())
        .map(|s| s.to_ascii_lowercase());
    let wants = |name: &str| selected.as_deref().map_or(true, |s| s == name);

    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: experiments [--exp e1..e7] [--quick]");
        return;
    }

    let (quality_seeds, quality_max) = if quick { (0..2, 10) } else { (0..8, 12) };
    let (small_sizes, large_sizes): (Vec<usize>, Vec<usize>) = if quick {
        (vec![8, 12], vec![40])
    } else {
        (vec![8, 12, 16], vec![40, 80, 160, 320])
    };
    let validator_sizes: Vec<usize> = if quick {
        vec![30, 60, 120]
    } else {
        vec![30, 60, 120, 240, 480, 960]
    };
    let provenance_seeds = if quick { 0..1 } else { 0..3 };
    let (train_seeds, eval_seeds) = if quick { (0..2, 2..3) } else { (0..6, 6..9) };

    if wants("e1") {
        println!("{}", e1_figure1().to_table().render());
    }
    if wants("e2") {
        println!("{}", e2_figure3().to_table().render());
    }
    if wants("e3") {
        println!(
            "{}",
            e3_quality(quality_seeds.clone(), quality_max)
                .to_table()
                .render()
        );
    }
    if wants("e4") {
        println!(
            "{}",
            e4_runtime(&small_sizes, &large_sizes, 16)
                .to_table()
                .render()
        );
    }
    if wants("e5") {
        println!("{}", e5_validator(&validator_sizes).to_table().render());
    }
    if wants("e6") {
        println!("{}", e6_provenance(provenance_seeds).to_table().render());
    }
    if wants("e7") {
        println!(
            "{}",
            e7_estimator(train_seeds, eval_seeds, quality_max)
                .to_table()
                .render()
        );
    }
}
