//! Throughput benchmark for `wolves-service`: requests/sec over a grid of
//! shard counts × worker-thread counts, driven by the concurrent batch
//! client over a real loopback TCP connection — plus the evented-core
//! grids: pipelining speedup, idle-connection scaling and WAL group-commit
//! cost under strict fsync.
//!
//! Usage:
//!
//! ```text
//! service_bench                     # full grid, JSON on stdout
//! service_bench --quick             # smaller grid / fewer requests (CI)
//! service_bench --out BENCH_service.json
//! service_bench --conn-smoke 10000  # hold N idle conns through a burst
//! ```
//!
//! The output is machine-readable JSON (handwritten — no serde in the
//! workspace), one row per grid point, so perf trajectories can be recorded
//! across PRs.

use std::fmt::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wolves_repo::{figure1, layered_workflow, topological_block_view, LayeredConfig};
use wolves_service::{
    serve, validate_throughput, BatchConfig, DurabilityBarrier, FileBackend, MutateOp,
    PersistConfig, ServerConfig, Verb, WorkflowId, WorkflowStore,
};

struct Row {
    shards: usize,
    workers: usize,
    clients: usize,
    completed: usize,
    errors: usize,
    elapsed_ms: f64,
    requests_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    /// Server-side validate latency percentiles (log2-bucket upper bounds),
    /// in microseconds — measured inside the store, so they exclude client
    /// and socket time.
    validate_p50_us: f64,
    validate_p99_us: f64,
}

/// Reader throughput with and without a concurrent mutator: the epoch-
/// snapshot read path promises reads never block behind writers, so the
/// contended rate should stay close to the idle rate (the residual gap is
/// verdict recomputation for the composites the mutations invalidate).
struct ReadUnderWrite {
    idle_rps: f64,
    contended_rps: f64,
    ratio: f64,
    mutations: u64,
    snapshot_publishes: u64,
    /// Server-side percentiles from the contended pass, in microseconds.
    validate_p50_us: f64,
    validate_p99_us: f64,
    mutate_p50_us: f64,
    mutate_p99_us: f64,
}

/// Log2-bucket upper bound for quantile `q`, converted to microseconds.
fn percentile_us(snapshot: &wolves_service::HistogramSnapshot, q: f64) -> f64 {
    snapshot.quantile(q) as f64 / 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: service_bench [--quick] [--out <file>] [--metrics-out <file>] \
             [--conn-smoke <idle-conns>]"
        );
        return;
    }
    if let Some(target) = args
        .iter()
        .position(|a| a == "--conn-smoke")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
    {
        std::process::exit(run_connection_smoke(target));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let metrics_out: Option<String> = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1).cloned());

    let (shard_grid, worker_grid, clients, requests_per_client): (Vec<usize>, Vec<usize>, _, _) =
        if quick {
            (vec![1, 4], vec![2, 4], 4, 50)
        } else {
            (vec![1, 2, 4, 8], vec![1, 2, 4, 8], 8, 250)
        };

    let mut rows = Vec::new();
    for &shards in &shard_grid {
        for &workers in &worker_grid {
            rows.push(run_grid_point(
                shards,
                workers,
                clients,
                requests_per_client,
            ));
        }
    }

    let (read_under_write, exposition) = run_read_under_write(quick);
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(&path, &exposition) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    let pipelining = run_pipelining(quick);
    let scaling = run_connection_scaling(quick);
    let group_commit = run_group_commit(quick);
    let json = render_json(
        &rows,
        &read_under_write,
        &pipelining,
        &scaling,
        &group_commit,
        quick,
    );
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    println!("{json}");
}

/// One grid point: a fresh server, a mixed workload of small (Figure 1) and
/// mid-size generated workflows, then the batch validate driver.
fn run_grid_point(shards: usize, workers: usize, clients: usize, requests: usize) -> Row {
    let server = serve(&ServerConfig {
        shards,
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = server.store();

    let mut ids: Vec<WorkflowId> = Vec::new();
    for seed in 0..8u64 {
        let fixture = figure1();
        ids.push(store.register(fixture.spec, Some(fixture.view)));
        let spec = layered_workflow(&LayeredConfig::sized(96), seed);
        let view = topological_block_view(&spec, 6, "blocks").expect("layered spec is a DAG");
        ids.push(store.register(spec, Some(view)));
    }

    let report = validate_throughput(
        server.local_addr(),
        &ids,
        BatchConfig {
            clients,
            requests_per_client: requests,
            pipeline: 1,
        },
    )
    .expect("throughput driver");
    let stats = store.stats();
    let validate = store.verb_histogram(Verb::Validate);
    server.shutdown();

    Row {
        shards,
        workers,
        clients,
        completed: report.completed,
        errors: report.errors,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        requests_per_sec: report.requests_per_sec(),
        cache_hits: stats.validate_hits(),
        cache_misses: stats.validate_misses(),
        validate_p50_us: percentile_us(&validate, 0.50),
        validate_p99_us: percentile_us(&validate, 0.99),
    }
}

/// The read-under-write grid point: the same validate workload twice over
/// one server — once idle, once with a mutator thread toggling an edge of
/// the first workflow (~2k mutations/sec, every one published as a fresh
/// snapshot and invalidating a cached verdict).
fn run_read_under_write(quick: bool) -> (ReadUnderWrite, String) {
    let (clients, requests) = if quick { (4, 50) } else { (8, 200) };
    let server = serve(&ServerConfig {
        shards: 4,
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = server.store();

    let mut ids: Vec<WorkflowId> = Vec::new();
    for seed in 0..8u64 {
        let fixture = figure1();
        ids.push(store.register(fixture.spec, Some(fixture.view)));
        let spec = layered_workflow(&LayeredConfig::sized(96), seed);
        let view = topological_block_view(&spec, 6, "blocks").expect("layered spec is a DAG");
        ids.push(store.register(spec, Some(view)));
    }
    let batch = BatchConfig {
        clients,
        requests_per_client: requests,
        pipeline: 1,
    };

    let idle = validate_throughput(server.local_addr(), &ids, batch).expect("idle pass");

    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let target = ids[0];
        std::thread::spawn(move || {
            let mut mutations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let op = if mutations % 2 == 0 {
                    MutateOp::AddEdge {
                        from: "Check additional annotations".to_owned(),
                        to: "Build phylo tree".to_owned(),
                    }
                } else {
                    MutateOp::RemoveEdge {
                        from: "Check additional annotations".to_owned(),
                        to: "Build phylo tree".to_owned(),
                    }
                };
                store.mutate(target, op).expect("toggle edge");
                mutations += 1;
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            mutations
        })
    };
    let contended = validate_throughput(server.local_addr(), &ids, batch).expect("contended pass");
    stop.store(true, Ordering::Relaxed);
    let mutations = mutator.join().expect("mutator thread");
    let snapshot_publishes = store.stats().snapshot_publishes();
    let validate = store.verb_histogram(Verb::Validate);
    let mutate = store.verb_histogram(Verb::Mutate);
    let exposition = store.metrics_text();
    server.shutdown();

    let idle_rps = idle.requests_per_sec();
    let contended_rps = contended.requests_per_sec();
    (
        ReadUnderWrite {
            idle_rps,
            contended_rps,
            ratio: idle_rps / contended_rps.max(1e-9),
            mutations,
            snapshot_publishes,
            validate_p50_us: percentile_us(&validate, 0.50),
            validate_p99_us: percentile_us(&validate, 0.99),
            mutate_p50_us: percentile_us(&mutate, 0.50),
            mutate_p99_us: percentile_us(&mutate, 0.99),
        },
        exposition,
    )
}

/// One-write-per-request vs pipelined vs server-side batch verb, same
/// connection count: the round-trip collapse the evented core exists for.
struct Pipelining {
    clients: usize,
    depth: usize,
    baseline_rps: f64,
    pipelined_rps: f64,
    batched_rps: f64,
    /// `pipelined_rps / baseline_rps` — the acceptance bar is ≥ 3.
    speedup: f64,
}

/// Validate throughput while N idle connections sit on the evented loop —
/// idle clients must cost file descriptors, not threads or throughput.
struct ScalingRow {
    idle_target: usize,
    idle_open: usize,
    completed: usize,
    errors: usize,
    requests_per_sec: f64,
}

/// Concurrent-mutator throughput on a real [`FileBackend`], OS-flush
/// (`fsync_every=0`) vs strict (`fsync_every=1`): group commit should keep
/// the strict ratio close to 1 because concurrent appends share one leader
/// fsync.
struct GroupCommit {
    mutators: usize,
    mutations_per_thread: usize,
    os_flush_rps: f64,
    strict_rps: f64,
    /// `os_flush_rps / strict_rps` — the acceptance bar is ≤ 1.2.
    ratio: f64,
    /// Leader fsyncs recorded by the strict run.
    batches: u64,
    /// Appends that rode another mutator's fsync in the strict run.
    absorbed: u64,
    mean_batch: f64,
}

fn temp_root(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "wolves-service-bench-{tag}-{}-{unique}",
        std::process::id()
    ))
}

/// An evented server (thread-pool fallback off Linux) preloaded with eight
/// Figure 1 workflows.
fn evented_fixture_server(
    shards: usize,
    workers: usize,
) -> (wolves_service::ServerHandle, Vec<WorkflowId>) {
    let server = serve(&ServerConfig {
        shards,
        workers,
        evented: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = server.store();
    let ids: Vec<WorkflowId> = (0..8)
        .map(|_| {
            let fixture = figure1();
            store.register(fixture.spec, Some(fixture.view))
        })
        .collect();
    (server, ids)
}

fn run_pipelining(quick: bool) -> Pipelining {
    let (clients, requests, depth) = if quick { (4, 400, 32) } else { (4, 2000, 32) };
    let (server, ids) = evented_fixture_server(4, 4);
    let addr = server.local_addr();

    let baseline = validate_throughput(
        addr,
        &ids,
        BatchConfig {
            clients,
            requests_per_client: requests,
            pipeline: 1,
        },
    )
    .expect("baseline pass");
    let pipelined = validate_throughput(
        addr,
        &ids,
        BatchConfig {
            clients,
            requests_per_client: requests,
            pipeline: depth,
        },
    )
    .expect("pipelined pass");

    // the batch verb: same requests, one nested frame per `depth` window
    let start = Instant::now();
    let batched_completed: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_index in 0..clients {
            let ids = &ids;
            handles.push(scope.spawn(move || {
                let Ok(mut client) = wolves_service::ServiceClient::connect(addr) else {
                    return 0usize;
                };
                let mut completed = 0usize;
                let mut sent = 0usize;
                while sent < requests {
                    let window = depth.min(requests - sent);
                    let batch: Vec<wolves_service::Request> = (0..window)
                        .map(|offset| wolves_service::Request::Validate {
                            workflow: ids[(client_index + sent + offset) % ids.len()],
                            version: None,
                        })
                        .collect();
                    match client.batch(batch) {
                        Ok(outcomes) => {
                            completed += outcomes.iter().filter(|o| o.is_ok()).count();
                        }
                        Err(_) => break,
                    }
                    sent += window;
                }
                completed
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    let batched_rps = batched_completed as f64 / start.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();

    let baseline_rps = baseline.requests_per_sec();
    let pipelined_rps = pipelined.requests_per_sec();
    Pipelining {
        clients,
        depth,
        baseline_rps,
        pipelined_rps,
        batched_rps,
        speedup: pipelined_rps / baseline_rps.max(1e-9),
    }
}

fn run_connection_scaling(quick: bool) -> Vec<ScalingRow> {
    let idle_grid: Vec<usize> = if quick {
        vec![0, 500]
    } else {
        vec![0, 1000, 5000]
    };
    let requests = if quick { 200 } else { 500 };
    let mut rows = Vec::new();
    for &idle_target in &idle_grid {
        let (server, ids) = evented_fixture_server(2, 4);
        let addr = server.local_addr();
        let mut idle = Vec::with_capacity(idle_target);
        for _ in 0..idle_target {
            // stop at the fd limit instead of failing the whole bench; the
            // row records how many actually opened
            let Ok(stream) = TcpStream::connect(addr) else {
                break;
            };
            idle.push(stream);
        }
        let report = validate_throughput(
            addr,
            &ids,
            BatchConfig {
                clients: 4,
                requests_per_client: requests,
                pipeline: 8,
            },
        )
        .expect("scaling pass");
        rows.push(ScalingRow {
            idle_target,
            idle_open: idle.len(),
            completed: report.completed,
            errors: report.errors,
            requests_per_sec: report.requests_per_sec(),
        });
        drop(idle);
        server.shutdown();
    }
    rows
}

/// Per-thread pipelined batch depth of the mutation burst: mutations defer
/// durability into one [`DurabilityBarrier`] per batch, exactly like the
/// evented server settles a pipelined connection's frames.
const GC_PIPELINE: usize = 8;

/// One mutation burst against a fresh durable store: `mutators` threads ×
/// `per_thread` mutate+validate rounds, each thread on its own workflow,
/// settled in pipelined batches of [`GC_PIPELINE`]. Returns the rate plus
/// the backend's group-commit observation.
fn mutation_burst(
    fsync_every: usize,
    mutators: usize,
    per_thread: usize,
) -> (f64, wolves_service::StorageObservation) {
    let root = temp_root(&format!("gc{fsync_every}"));
    // one shard: every mutator funnels into the same segment, which is the
    // worst case for per-append fsyncs and exactly what group commit is for
    let backend = FileBackend::open(PersistConfig {
        shards: 1,
        fsync_every,
        ..PersistConfig::new(&root)
    })
    .expect("open file backend");
    let (store, _report) = WorkflowStore::open(Arc::new(backend)).expect("recover empty dir");
    // realistic op weight: each mutator owns a ~500-task layered workflow
    // and toggles a long forward edge (first layer → last layer; the
    // generator never connects layers that far apart, so the add is always
    // fresh and trivially acyclic)
    let targets: Vec<(WorkflowId, String, String)> = (0..mutators)
        .map(|seed| {
            let spec = layered_workflow(&LayeredConfig::sized(512), seed as u64);
            let (mut from, mut to, mut deepest) = (String::new(), String::new(), 0usize);
            for (_, task) in spec.tasks() {
                let layer: usize = task
                    .params
                    .get("layer")
                    .and_then(|l| l.parse().ok())
                    .unwrap_or(0);
                if layer == 0 && from.is_empty() {
                    from = task.name.clone();
                }
                if layer >= deepest {
                    deepest = layer;
                    to = task.name.clone();
                }
            }
            let view = topological_block_view(&spec, 48, "blocks").expect("layered spec is a DAG");
            let id = store
                .try_register(spec, Some(view))
                .expect("register workflow durably");
            (id, from, to)
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (target, from, to) in &targets {
            let store = &store;
            scope.spawn(move || {
                let mut index = 0;
                while index < per_thread {
                    let batch_end = (index + GC_PIPELINE).min(per_thread);
                    let mut barrier = DurabilityBarrier::default();
                    for i in index..batch_end {
                        let op = if i % 2 == 0 {
                            MutateOp::AddEdge {
                                from: from.clone(),
                                to: to.clone(),
                            }
                        } else {
                            MutateOp::RemoveEdge {
                                from: from.clone(),
                                to: to.clone(),
                            }
                        };
                        let (_, ticket) = store
                            .mutate_deferred(*target, op, None)
                            .expect("toggle edge");
                        barrier.fold(ticket);
                        // closed loop: every edit is followed by a
                        // soundness check of the view, as in the paper's
                        // workflow — the mutation bumped the epoch, so this
                        // recomputes verdicts rather than serving cached
                        // ones
                        store.validate(*target, None).expect("revalidate view");
                    }
                    // acknowledge the batch: one group-commit wait covers
                    // all of its records (a no-op in os-flush mode)
                    store.await_durability(&barrier).expect("settle batch");
                    index = batch_end;
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let observed = store.backend().observe();
    drop(store);
    let _ = std::fs::remove_dir_all(&root);
    let total = (mutators * per_thread) as f64;
    (total / elapsed.as_secs_f64().max(1e-9), observed)
}

fn run_group_commit(quick: bool) -> GroupCommit {
    // enough concurrent mutators that a leader's fsync has a full group
    // stacked behind it — the acceptance floor is 8, the amortisation story
    // needs more
    let mutators = if quick { 32 } else { 64 };
    let per_thread = if quick { 50 } else { 200 };
    let (os_flush_rps, _) = mutation_burst(0, mutators, per_thread);
    let (strict_rps, observed) = mutation_burst(1, mutators, per_thread);
    let batches = observed.group_commit_batch.count();
    let absorbed = observed.group_commit_absorbed;
    GroupCommit {
        mutators,
        mutations_per_thread: per_thread,
        os_flush_rps,
        strict_rps,
        ratio: os_flush_rps / strict_rps.max(1e-9),
        batches,
        absorbed,
        mean_batch: (absorbed + batches) as f64 / batches.max(1) as f64,
    }
}

/// The CI smoke: hold `target` idle connections on the evented loop while a
/// mutation burst and a pipelined validate pass run through it, then prove
/// a sample of the idle connections is still served. Non-zero exit on any
/// failure.
fn run_connection_smoke(target: usize) -> i32 {
    // holding idle connections is the point of this smoke, so the idle
    // reclamation sweep is off — opening and probing tens of thousands of
    // sockets takes longer than any sensible production idle timeout
    let server = serve(&ServerConfig {
        shards: 2,
        workers: 4,
        evented: true,
        read_timeout_ms: 0,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = server.store();
    let ids: Vec<WorkflowId> = (0..8)
        .map(|_| {
            let fixture = figure1();
            store.register(fixture.spec, Some(fixture.view))
        })
        .collect();
    let addr = server.local_addr();

    let probe_count = 8.min(target.max(1));
    let mut probes = Vec::new();
    for _ in 0..probe_count {
        match wolves_service::ServiceClient::connect(addr) {
            Ok(client) => probes.push(client),
            Err(e) => {
                eprintln!("conn-smoke: cannot open probe connection: {e}");
                return 1;
            }
        }
    }
    let mut idle = Vec::with_capacity(target.saturating_sub(probe_count));
    while idle.len() + probe_count < target {
        match TcpStream::connect(addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => {
                eprintln!(
                    "conn-smoke: opened only {} of {target} connections: {e} \
                     (raise `ulimit -n`?)",
                    idle.len() + probe_count
                );
                return 1;
            }
        }
    }

    // the burst: 8 TCP mutator clients toggling their own workflows while
    // the idle connections sit on the loop
    let burst_ok = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &target_id in &ids {
            handles.push(scope.spawn(move || {
                let Ok(mut client) = wolves_service::ServiceClient::connect(addr) else {
                    return false;
                };
                for index in 0..100usize {
                    let op = if index % 2 == 0 {
                        MutateOp::AddEdge {
                            from: "Check additional annotations".to_owned(),
                            to: "Build phylo tree".to_owned(),
                        }
                    } else {
                        MutateOp::RemoveEdge {
                            from: "Check additional annotations".to_owned(),
                            to: "Build phylo tree".to_owned(),
                        }
                    };
                    if client.mutate(target_id, op).is_err() {
                        return false;
                    }
                }
                true
            }));
        }
        handles.into_iter().all(|h| h.join().unwrap_or(false))
    });
    if !burst_ok {
        eprintln!("conn-smoke: mutation burst failed under {target} idle connections");
        return 1;
    }

    let report = validate_throughput(
        addr,
        &ids,
        BatchConfig {
            clients: 4,
            requests_per_client: 200,
            pipeline: 8,
        },
    )
    .expect("smoke validate pass");
    if report.errors > 0 || report.completed == 0 {
        eprintln!(
            "conn-smoke: validate pass degraded: {} completed, {} errors",
            report.completed, report.errors
        );
        return 1;
    }

    // the probes sat idle through the whole burst; they must still be live
    for (index, probe) in probes.iter_mut().enumerate() {
        if let Err(e) = probe.stats() {
            eprintln!("conn-smoke: idle probe {index} no longer served: {e}");
            return 1;
        }
    }
    let open = server.store().metrics_text();
    let gauge = open
        .lines()
        .find(|l| l.starts_with("wolves_open_connections "))
        .map(str::to_owned)
        .unwrap_or_default();
    drop(idle);
    drop(probes);
    server.shutdown();
    println!(
        "conn-smoke: held {target} connections through burst + {} validates ({gauge})",
        report.completed
    );
    0
}

fn render_json(
    rows: &[Row],
    read_under_write: &ReadUnderWrite,
    pipelining: &Pipelining,
    scaling: &[ScalingRow],
    group_commit: &GroupCommit,
    quick: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"wolves-service throughput\",");
    let _ = writeln!(out, "  \"workload\": \"validate over loopback TCP\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"workers\": {}, \"clients\": {}, \"completed\": {}, \
             \"errors\": {}, \"elapsed_ms\": {:.3}, \"requests_per_sec\": {:.1}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"validate_p50_us\": {:.3}, \"validate_p99_us\": {:.3}}}",
            row.shards,
            row.workers,
            row.clients,
            row.completed,
            row.errors,
            row.elapsed_ms,
            row.requests_per_sec,
            row.cache_hits,
            row.cache_misses,
            row.validate_p50_us,
            row.validate_p99_us
        );
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"read_under_write\": {{\"idle_rps\": {:.1}, \"contended_rps\": {:.1}, \
         \"ratio\": {:.3}, \"mutations\": {}, \"snapshot_publishes\": {}, \
         \"validate_p50_us\": {:.3}, \"validate_p99_us\": {:.3}, \
         \"mutate_p50_us\": {:.3}, \"mutate_p99_us\": {:.3}}},",
        read_under_write.idle_rps,
        read_under_write.contended_rps,
        read_under_write.ratio,
        read_under_write.mutations,
        read_under_write.snapshot_publishes,
        read_under_write.validate_p50_us,
        read_under_write.validate_p99_us,
        read_under_write.mutate_p50_us,
        read_under_write.mutate_p99_us
    );
    let _ = writeln!(
        out,
        "  \"pipelining\": {{\"clients\": {}, \"depth\": {}, \"baseline_rps\": {:.1}, \
         \"pipelined_rps\": {:.1}, \"batched_rps\": {:.1}, \"speedup\": {:.3}}},",
        pipelining.clients,
        pipelining.depth,
        pipelining.baseline_rps,
        pipelining.pipelined_rps,
        pipelining.batched_rps,
        pipelining.speedup
    );
    out.push_str("  \"connection_scaling\": [\n");
    for (index, row) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"idle_target\": {}, \"idle_open\": {}, \"completed\": {}, \
             \"errors\": {}, \"requests_per_sec\": {:.1}}}",
            row.idle_target, row.idle_open, row.completed, row.errors, row.requests_per_sec
        );
        out.push_str(if index + 1 < scaling.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"group_commit\": {{\"mutators\": {}, \"mutations_per_thread\": {}, \
         \"os_flush_rps\": {:.1}, \"strict_rps\": {:.1}, \"ratio\": {:.3}, \
         \"batches\": {}, \"absorbed\": {}, \"mean_batch\": {:.3}}}",
        group_commit.mutators,
        group_commit.mutations_per_thread,
        group_commit.os_flush_rps,
        group_commit.strict_rps,
        group_commit.ratio,
        group_commit.batches,
        group_commit.absorbed,
        group_commit.mean_batch
    );
    out.push_str("}\n");
    out
}
