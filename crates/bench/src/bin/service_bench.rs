//! Throughput benchmark for `wolves-service`: requests/sec over a grid of
//! shard counts × worker-thread counts, driven by the concurrent batch
//! client over a real loopback TCP connection.
//!
//! Usage:
//!
//! ```text
//! service_bench                     # full grid, JSON on stdout
//! service_bench --quick             # smaller grid / fewer requests (CI)
//! service_bench --out BENCH_service.json
//! ```
//!
//! The output is machine-readable JSON (handwritten — no serde in the
//! workspace), one row per grid point, so perf trajectories can be recorded
//! across PRs.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wolves_repo::{figure1, layered_workflow, topological_block_view, LayeredConfig};
use wolves_service::{
    serve, validate_throughput, BatchConfig, MutateOp, ServerConfig, Verb, WorkflowId,
};

struct Row {
    shards: usize,
    workers: usize,
    clients: usize,
    completed: usize,
    errors: usize,
    elapsed_ms: f64,
    requests_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    /// Server-side validate latency percentiles (log2-bucket upper bounds),
    /// in microseconds — measured inside the store, so they exclude client
    /// and socket time.
    validate_p50_us: f64,
    validate_p99_us: f64,
}

/// Reader throughput with and without a concurrent mutator: the epoch-
/// snapshot read path promises reads never block behind writers, so the
/// contended rate should stay close to the idle rate (the residual gap is
/// verdict recomputation for the composites the mutations invalidate).
struct ReadUnderWrite {
    idle_rps: f64,
    contended_rps: f64,
    ratio: f64,
    mutations: u64,
    snapshot_publishes: u64,
    /// Server-side percentiles from the contended pass, in microseconds.
    validate_p50_us: f64,
    validate_p99_us: f64,
    mutate_p50_us: f64,
    mutate_p99_us: f64,
}

/// Log2-bucket upper bound for quantile `q`, converted to microseconds.
fn percentile_us(snapshot: &wolves_service::HistogramSnapshot, q: f64) -> f64 {
    snapshot.quantile(q) as f64 / 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: service_bench [--quick] [--out <file>] [--metrics-out <file>]");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let metrics_out: Option<String> = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1).cloned());

    let (shard_grid, worker_grid, clients, requests_per_client): (Vec<usize>, Vec<usize>, _, _) =
        if quick {
            (vec![1, 4], vec![2, 4], 4, 50)
        } else {
            (vec![1, 2, 4, 8], vec![1, 2, 4, 8], 8, 250)
        };

    let mut rows = Vec::new();
    for &shards in &shard_grid {
        for &workers in &worker_grid {
            rows.push(run_grid_point(
                shards,
                workers,
                clients,
                requests_per_client,
            ));
        }
    }

    let (read_under_write, exposition) = run_read_under_write(quick);
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(&path, &exposition) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    let json = render_json(&rows, &read_under_write, quick);
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    println!("{json}");
}

/// One grid point: a fresh server, a mixed workload of small (Figure 1) and
/// mid-size generated workflows, then the batch validate driver.
fn run_grid_point(shards: usize, workers: usize, clients: usize, requests: usize) -> Row {
    let server = serve(&ServerConfig {
        shards,
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = server.store();

    let mut ids: Vec<WorkflowId> = Vec::new();
    for seed in 0..8u64 {
        let fixture = figure1();
        ids.push(store.register(fixture.spec, Some(fixture.view)));
        let spec = layered_workflow(&LayeredConfig::sized(96), seed);
        let view = topological_block_view(&spec, 6, "blocks").expect("layered spec is a DAG");
        ids.push(store.register(spec, Some(view)));
    }

    let report = validate_throughput(
        server.local_addr(),
        &ids,
        BatchConfig {
            clients,
            requests_per_client: requests,
        },
    )
    .expect("throughput driver");
    let stats = store.stats();
    let validate = store.verb_histogram(Verb::Validate);
    server.shutdown();

    Row {
        shards,
        workers,
        clients,
        completed: report.completed,
        errors: report.errors,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        requests_per_sec: report.requests_per_sec(),
        cache_hits: stats.validate_hits(),
        cache_misses: stats.validate_misses(),
        validate_p50_us: percentile_us(&validate, 0.50),
        validate_p99_us: percentile_us(&validate, 0.99),
    }
}

/// The read-under-write grid point: the same validate workload twice over
/// one server — once idle, once with a mutator thread toggling an edge of
/// the first workflow (~2k mutations/sec, every one published as a fresh
/// snapshot and invalidating a cached verdict).
fn run_read_under_write(quick: bool) -> (ReadUnderWrite, String) {
    let (clients, requests) = if quick { (4, 50) } else { (8, 200) };
    let server = serve(&ServerConfig {
        shards: 4,
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = server.store();

    let mut ids: Vec<WorkflowId> = Vec::new();
    for seed in 0..8u64 {
        let fixture = figure1();
        ids.push(store.register(fixture.spec, Some(fixture.view)));
        let spec = layered_workflow(&LayeredConfig::sized(96), seed);
        let view = topological_block_view(&spec, 6, "blocks").expect("layered spec is a DAG");
        ids.push(store.register(spec, Some(view)));
    }
    let batch = BatchConfig {
        clients,
        requests_per_client: requests,
    };

    let idle = validate_throughput(server.local_addr(), &ids, batch).expect("idle pass");

    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let target = ids[0];
        std::thread::spawn(move || {
            let mut mutations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let op = if mutations % 2 == 0 {
                    MutateOp::AddEdge {
                        from: "Check additional annotations".to_owned(),
                        to: "Build phylo tree".to_owned(),
                    }
                } else {
                    MutateOp::RemoveEdge {
                        from: "Check additional annotations".to_owned(),
                        to: "Build phylo tree".to_owned(),
                    }
                };
                store.mutate(target, op).expect("toggle edge");
                mutations += 1;
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            mutations
        })
    };
    let contended = validate_throughput(server.local_addr(), &ids, batch).expect("contended pass");
    stop.store(true, Ordering::Relaxed);
    let mutations = mutator.join().expect("mutator thread");
    let snapshot_publishes = store.stats().snapshot_publishes();
    let validate = store.verb_histogram(Verb::Validate);
    let mutate = store.verb_histogram(Verb::Mutate);
    let exposition = store.metrics_text();
    server.shutdown();

    let idle_rps = idle.requests_per_sec();
    let contended_rps = contended.requests_per_sec();
    (
        ReadUnderWrite {
            idle_rps,
            contended_rps,
            ratio: idle_rps / contended_rps.max(1e-9),
            mutations,
            snapshot_publishes,
            validate_p50_us: percentile_us(&validate, 0.50),
            validate_p99_us: percentile_us(&validate, 0.99),
            mutate_p50_us: percentile_us(&mutate, 0.50),
            mutate_p99_us: percentile_us(&mutate, 0.99),
        },
        exposition,
    )
}

fn render_json(rows: &[Row], read_under_write: &ReadUnderWrite, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"wolves-service throughput\",");
    let _ = writeln!(out, "  \"workload\": \"validate over loopback TCP\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"workers\": {}, \"clients\": {}, \"completed\": {}, \
             \"errors\": {}, \"elapsed_ms\": {:.3}, \"requests_per_sec\": {:.1}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"validate_p50_us\": {:.3}, \"validate_p99_us\": {:.3}}}",
            row.shards,
            row.workers,
            row.clients,
            row.completed,
            row.errors,
            row.elapsed_ms,
            row.requests_per_sec,
            row.cache_hits,
            row.cache_misses,
            row.validate_p50_us,
            row.validate_p99_us
        );
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"read_under_write\": {{\"idle_rps\": {:.1}, \"contended_rps\": {:.1}, \
         \"ratio\": {:.3}, \"mutations\": {}, \"snapshot_publishes\": {}, \
         \"validate_p50_us\": {:.3}, \"validate_p99_us\": {:.3}, \
         \"mutate_p50_us\": {:.3}, \"mutate_p99_us\": {:.3}}}",
        read_under_write.idle_rps,
        read_under_write.contended_rps,
        read_under_write.ratio,
        read_under_write.mutations,
        read_under_write.snapshot_publishes,
        read_under_write.validate_p50_us,
        read_under_write.validate_p99_us,
        read_under_write.mutate_p50_us,
        read_under_write.mutate_p99_us
    );
    out.push_str("}\n");
    out
}
