//! Durability benchmark for `wolves-service`: WAL append overhead versus
//! the in-memory store, and cold-recovery time after a restart.
//!
//! Workload per backend: register a mid-size generated workflow, drive `N`
//! mutations (grow a task, wire it in), then "restart" — drop the store and
//! reopen the data directory, replaying snapshot + write-ahead log — and
//! measure how long recovery takes, both from a raw log and after snapshot
//! compaction.
//!
//! Usage:
//!
//! ```text
//! persist_bench                     # full run, JSON on stdout
//! persist_bench --quick             # fewer mutations (CI)
//! persist_bench --out BENCH_persist.json
//! ```
//!
//! The output is machine-readable JSON (handwritten — no serde in the
//! workspace), one row per backend configuration, so the WAL-overhead
//! trajectory can be recorded across PRs.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use wolves_repo::{layered_workflow, topological_block_view, LayeredConfig};
use wolves_service::{
    FileBackend, HistogramSnapshot, MutateOp, PersistConfig, Stage, Verb, WorkflowId, WorkflowStore,
};

struct Row {
    backend: &'static str,
    mutations: usize,
    elapsed_ms: f64,
    mutations_per_sec: f64,
    overhead_vs_memory: f64,
    recovery_ms: f64,
    compacted_recovery_ms: f64,
    replayed_records: usize,
    /// Server-side mutate latency percentiles (log2-bucket upper bounds),
    /// in microseconds, plus the WAL append/fsync stage breakdown.
    mutate_p50_us: f64,
    mutate_p99_us: f64,
    wal_append_p50_us: f64,
    wal_append_p99_us: f64,
    fsync_p50_us: f64,
    fsync_p99_us: f64,
}

/// Log2-bucket upper bound for quantile `q`, converted to microseconds.
fn percentile_us(snapshot: &HistogramSnapshot, q: f64) -> f64 {
    snapshot.quantile(q) as f64 / 1e3
}

enum Backend {
    Memory,
    Wal { fsync_every: usize },
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: persist_bench [--quick] [--out <file>]");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let mutations = if quick { 300 } else { 2000 };

    // fsync_every: 0 = the default OS-flush policy (process-crash durable,
    // what the kill-and-recover acceptance test exercises); 16 = bounded
    // power-loss window; 1 = strict fsync-per-record
    let configs: [(&'static str, Backend); 4] = [
        ("memory", Backend::Memory),
        ("wal-os-flush", Backend::Wal { fsync_every: 0 }),
        ("wal-fsync-16", Backend::Wal { fsync_every: 16 }),
        ("wal-fsync-every-record", Backend::Wal { fsync_every: 1 }),
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut memory_rate = 0.0f64;
    for (name, backend) in configs {
        let row = run_backend(name, &backend, mutations, memory_rate);
        if matches!(backend, Backend::Memory) {
            memory_rate = row.mutations_per_sec;
        }
        rows.push(row);
    }

    let json = render_json(&rows, quick);
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    println!("{json}");
}

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wolves-persist-bench-{tag}-{}", std::process::id()))
}

fn open_store(root: &PathBuf, fsync_every: usize) -> WorkflowStore {
    let backend = FileBackend::open(PersistConfig {
        shards: 2,
        fsync_every,
        // large enough that rotation frequency reflects real settings
        segment_bytes: 4 * 1024 * 1024,
        ..PersistConfig::new(root)
    })
    .expect("open the bench data dir");
    WorkflowStore::open(Arc::new(backend))
        .expect("recover the bench store")
        .0
}

/// Registers the base workflow and applies the mutation stream, returning
/// the wall-clock of the mutation loop alone.
fn drive(store: &WorkflowStore, mutations: usize) -> (WorkflowId, f64) {
    let spec = layered_workflow(&LayeredConfig::sized(96), 42);
    let view = topological_block_view(&spec, 6, "blocks").expect("layered spec is a DAG");
    let anchor = spec
        .tasks()
        .next()
        .map(|(_, task)| task.name.clone())
        .expect("non-empty workflow");
    let id = store.try_register(spec, Some(view)).expect("register");
    let start = Instant::now();
    for index in 0..mutations / 2 {
        let name = format!("grown-{index}");
        store
            .mutate(id, MutateOp::AddTask { name: name.clone() })
            .expect("add task");
        let from = if index == 0 {
            anchor.clone()
        } else {
            format!("grown-{}", index - 1)
        };
        store
            .mutate(id, MutateOp::AddEdge { from, to: name })
            .expect("add edge");
    }
    (id, start.elapsed().as_secs_f64() * 1e3)
}

fn run_backend(name: &'static str, backend: &Backend, mutations: usize, memory_rate: f64) -> Row {
    match backend {
        Backend::Memory => {
            let store = WorkflowStore::new(2);
            let (_, elapsed_ms) = drive(&store, mutations);
            let rate = mutations as f64 / (elapsed_ms / 1e3);
            let mutate = store.verb_histogram(Verb::Mutate);
            Row {
                backend: name,
                mutations,
                elapsed_ms,
                mutations_per_sec: rate,
                overhead_vs_memory: 1.0,
                recovery_ms: 0.0,
                compacted_recovery_ms: 0.0,
                replayed_records: 0,
                mutate_p50_us: percentile_us(&mutate, 0.50),
                mutate_p99_us: percentile_us(&mutate, 0.99),
                wal_append_p50_us: 0.0,
                wal_append_p99_us: 0.0,
                fsync_p50_us: 0.0,
                fsync_p99_us: 0.0,
            }
        }
        Backend::Wal { fsync_every } => {
            let root = temp_root(name);
            let _ = std::fs::remove_dir_all(&root);
            let store = open_store(&root, *fsync_every);
            let (id, elapsed_ms) = drive(&store, mutations);
            let rate = mutations as f64 / (elapsed_ms / 1e3);
            let mutate = store.verb_histogram(Verb::Mutate);
            let wal_append = store.stage_histogram(Stage::WalAppend);
            let fsync = store.stage_histogram(Stage::Fsync);
            drop(store);

            // cold recovery: replay whatever snapshot + log the "crash" left
            let start = Instant::now();
            let backend = FileBackend::open(PersistConfig {
                shards: 2,
                fsync_every: *fsync_every,
                segment_bytes: 4 * 1024 * 1024,
                ..PersistConfig::new(&root)
            })
            .expect("reopen");
            let (store, report) = WorkflowStore::open(Arc::new(backend)).expect("recover");
            let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
            let replayed_records = report.replayed_records;
            assert!(store.validate(id, None).is_ok(), "recovered store answers");

            // recovery itself compacts, so the next start replays the
            // snapshot only
            drop(store);
            let start = Instant::now();
            let store = open_store(&root, *fsync_every);
            let compacted_recovery_ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(store.validate(id, None).is_ok());
            drop(store);
            let _ = std::fs::remove_dir_all(&root);

            Row {
                backend: name,
                mutations,
                elapsed_ms,
                mutations_per_sec: rate,
                overhead_vs_memory: if rate > 0.0 {
                    memory_rate / rate
                } else {
                    f64::NAN
                },
                recovery_ms,
                compacted_recovery_ms,
                replayed_records,
                mutate_p50_us: percentile_us(&mutate, 0.50),
                mutate_p99_us: percentile_us(&mutate, 0.99),
                wal_append_p50_us: percentile_us(&wal_append, 0.50),
                wal_append_p99_us: percentile_us(&wal_append, 0.99),
                fsync_p50_us: percentile_us(&fsync, 0.50),
                fsync_p99_us: percentile_us(&fsync, 0.99),
            }
        }
    }
}

fn render_json(rows: &[Row], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"wolves-service durable store\",");
    let _ = writeln!(
        out,
        "  \"workload\": \"register + mutation stream + restart (snapshot/WAL recovery)\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"backend\": \"{}\", \"mutations\": {}, \"elapsed_ms\": {:.2}, \
             \"mutations_per_sec\": {:.0}, \"overhead_vs_memory\": {:.2}, \
             \"recovery_ms\": {:.2}, \"compacted_recovery_ms\": {:.2}, \
             \"replayed_records\": {}, \
             \"mutate_p50_us\": {:.3}, \"mutate_p99_us\": {:.3}, \
             \"wal_append_p50_us\": {:.3}, \"wal_append_p99_us\": {:.3}, \
             \"fsync_p50_us\": {:.3}, \"fsync_p99_us\": {:.3}}}",
            row.backend,
            row.mutations,
            row.elapsed_ms,
            row.mutations_per_sec,
            row.overhead_vs_memory,
            row.recovery_ms,
            row.compacted_recovery_ms,
            row.replayed_records,
            row.mutate_p50_us,
            row.mutate_p99_us,
            row.wal_append_p50_us,
            row.wal_append_p99_us,
            row.fsync_p50_us,
            row.fsync_p99_us
        );
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
