//! The seven experiments that reproduce the paper's evaluation and claims.

use std::collections::BTreeSet;
use std::time::Instant;

use wolves_core::correct::check::is_strong_local_optimal;
use wolves_core::correct::{Corrector, OptimalCorrector, StrongCorrector, WeakCorrector};
use wolves_core::estimate::{CorrectionSample, EstimationRegistry, WorkloadClass};
use wolves_core::hardness::crossing_groups;
use wolves_core::quality::quality_from_counts;
use wolves_core::validate::{validate, validate_by_definition, validate_naive};
use wolves_core::Strategy;
use wolves_provenance::{
    compare_to_ground_truth, view_level_provenance, workflow_level_provenance,
};
use wolves_repo::generate::{layered_workflow, LayeredConfig};
use wolves_repo::views::topological_block_view;
use wolves_repo::{figure1, figure3};
use wolves_workflow::{TaskId, WorkflowSpec};

use crate::table::Table;
use crate::workloads::{sized_composite, unsound_composites_from_suite};

fn micros(run: impl FnOnce()) -> f64 {
    let start = Instant::now();
    run();
    start.elapsed().as_secs_f64() * 1e6
}

fn split_parts(
    corrector: &dyn Corrector,
    spec: &WorkflowSpec,
    members: &BTreeSet<TaskId>,
) -> usize {
    corrector
        .split(spec, members)
        .map(|s| s.part_count())
        .unwrap_or(members.len())
}

// ---------------------------------------------------------------------------
// E1 — Figure 1: unsound view detection and its provenance impact
// ---------------------------------------------------------------------------

/// Result of experiment E1 (paper Figure 1 and the §1 motivating example).
#[derive(Debug, Clone)]
pub struct E1Report {
    /// Names of the unsound composite tasks found by the validator.
    pub unsound_composites: Vec<String>,
    /// Number of spurious view-level dependencies (Definition 2.1 check).
    pub spurious_dependencies: usize,
    /// Provenance precision for task (8)'s output through the unsound view.
    pub precision_unsound: f64,
    /// Provenance precision through the corrected view.
    pub precision_corrected: f64,
    /// Composite-task count before and after correction.
    pub composites_before_after: (usize, usize),
}

impl E1Report {
    /// Renders the report as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "E1  Figure 1: detecting the unsound view and its provenance impact",
            &["metric", "value"],
        );
        table.push_row(vec![
            "unsound composite tasks".into(),
            self.unsound_composites.join(", "),
        ]);
        table.push_row(vec![
            "spurious view dependencies".into(),
            self.spurious_dependencies.to_string(),
        ]);
        table.push_row(vec![
            "provenance precision (unsound view)".into(),
            format!("{:.3}", self.precision_unsound),
        ]);
        table.push_row(vec![
            "provenance precision (corrected view)".into(),
            format!("{:.3}", self.precision_corrected),
        ]);
        table.push_row(vec![
            "composite tasks before -> after".into(),
            format!(
                "{} -> {}",
                self.composites_before_after.0, self.composites_before_after.1
            ),
        ]);
        table
    }
}

/// Runs experiment E1.
#[must_use]
pub fn e1_figure1() -> E1Report {
    let fixture = figure1();
    let report = validate(&fixture.spec, &fixture.view);
    let unsound_composites = report
        .unsound_composites()
        .into_iter()
        .filter_map(|id| fixture.view.composite(id).ok().map(|c| c.name.clone()))
        .collect();
    let definition = validate_by_definition(&fixture.spec, &fixture.view);
    let subject = fixture.task(8);
    let truth = workflow_level_provenance(&fixture.spec, subject);
    let before = view_level_provenance(&fixture.spec, &fixture.view, subject);
    let (corrected, _) =
        wolves_core::correct::correct_view(&fixture.spec, &fixture.view, &StrongCorrector::new())
            .expect("figure 1 correction succeeds");
    let after = view_level_provenance(&fixture.spec, &corrected, subject);
    E1Report {
        unsound_composites,
        spurious_dependencies: definition.spurious.len(),
        precision_unsound: compare_to_ground_truth(&truth, &before).precision,
        precision_corrected: compare_to_ground_truth(&truth, &after).precision,
        composites_before_after: (fixture.view.composite_count(), corrected.composite_count()),
    }
}

// ---------------------------------------------------------------------------
// E2 — Figure 3: weak vs strong vs optimal on one composite
// ---------------------------------------------------------------------------

/// Result of experiment E2 (paper Figure 3).
#[derive(Debug, Clone)]
pub struct E2Report {
    /// Parts produced by the weakly local optimal corrector.
    pub weak_parts: usize,
    /// Parts produced by the strongly local optimal corrector.
    pub strong_parts: usize,
    /// Parts produced by the optimal corrector.
    pub optimal_parts: usize,
    /// Whether the strong corrector's output satisfies Definition 2.6
    /// (verified with the exhaustive checker).
    pub strong_is_strong_local_optimal: bool,
}

impl E2Report {
    /// Renders the report as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "E2  Figure 3: correcting one unsound composite task (12 atomic tasks)",
            &["corrector", "resulting composite tasks", "quality"],
        );
        for (name, parts) in [
            ("weak local optimal", self.weak_parts),
            ("strong local optimal", self.strong_parts),
            ("optimal (exact)", self.optimal_parts),
        ] {
            table.push_row(vec![
                name.into(),
                parts.to_string(),
                format!("{:.3}", quality_from_counts(self.optimal_parts, parts)),
            ]);
        }
        table
    }
}

/// Runs experiment E2.
#[must_use]
pub fn e2_figure3() -> E2Report {
    let fixture = figure3();
    let weak = WeakCorrector::new()
        .split(&fixture.spec, &fixture.members)
        .expect("weak split");
    let strong = StrongCorrector::new()
        .split(&fixture.spec, &fixture.members)
        .expect("strong split");
    let optimal = OptimalCorrector::new()
        .split(&fixture.spec, &fixture.members)
        .expect("optimal split");
    E2Report {
        weak_parts: weak.part_count(),
        strong_parts: strong.part_count(),
        optimal_parts: optimal.part_count(),
        strong_is_strong_local_optimal: is_strong_local_optimal(&fixture.spec, &strong),
    }
}

// ---------------------------------------------------------------------------
// E3 — quality of the polynomial correctors vs the optimal corrector
// ---------------------------------------------------------------------------

/// One row of experiment E3: quality per workload family.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Workload family ("expert", "auto", "blocks", "random").
    pub family: &'static str,
    /// Number of unsound composites evaluated.
    pub instances: usize,
    /// Mean quality of the weak corrector (optimal parts / weak parts).
    pub weak_quality: f64,
    /// Mean quality of the strong corrector.
    pub strong_quality: f64,
    /// Fraction of strong-corrector outputs that satisfy Definition 2.6.
    pub strong_optimality_rate: f64,
}

/// Result of experiment E3.
#[derive(Debug, Clone)]
pub struct E3Report {
    /// Per-family rows.
    pub rows: Vec<E3Row>,
}

impl E3Report {
    /// Renders the report as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "E3  Correction quality vs the optimal corrector (quality = optimal parts / produced parts)",
            &["workload", "instances", "weak quality", "strong quality", "strong Def-2.6 rate"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.family.into(),
                row.instances.to_string(),
                format!("{:.3}", row.weak_quality),
                format!("{:.3}", row.strong_quality),
                format!("{:.2}", row.strong_optimality_rate),
            ]);
        }
        table
    }

    /// Mean strong quality across all families (used by assertions).
    #[must_use]
    pub fn overall_strong_quality(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.strong_quality))
    }

    /// Mean weak quality across all families.
    #[must_use]
    pub fn overall_weak_quality(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.weak_quality))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        return 0.0;
    }
    collected.iter().sum::<f64>() / collected.len() as f64
}

/// Runs experiment E3 over the standard suite with the given seeds.
/// Composites larger than `max_size` are skipped (the optimal corrector is
/// exponential).
#[must_use]
pub fn e3_quality(seeds: std::ops::Range<u64>, max_size: usize) -> E3Report {
    let mut instances = unsound_composites_from_suite(seeds.clone(), 3, max_size);
    // Composites extracted from the realistic generators are usually easy:
    // all three correctors find the same split. The weak/strong separation
    // the paper highlights (Figure 3) comes from crossing structures, so the
    // quality experiment additionally evaluates crossing-group composites
    // ("crossing" family) of every size the optimal corrector can handle.
    for (i, _) in seeds.enumerate() {
        for groups in 2..=(max_size / 4).max(2) {
            if groups * 4 > max_size {
                break;
            }
            let hard = crossing_groups(groups).expect("hard instance");
            instances.push(crate::workloads::CompositeInstance {
                label: format!("crossing-{groups}-{i}"),
                family: "crossing",
                spec: hard.spec,
                members: hard.members,
            });
        }
    }
    let optimal = OptimalCorrector::with_limit(max_size.max(4));
    let weak = WeakCorrector::new();
    let strong = StrongCorrector::new();
    let mut per_family: std::collections::BTreeMap<&'static str, Vec<(f64, f64, bool)>> =
        std::collections::BTreeMap::new();
    for instance in &instances {
        let Ok(best) = optimal.split(&instance.spec, &instance.members) else {
            continue;
        };
        let weak_split = weak
            .split(&instance.spec, &instance.members)
            .expect("weak split");
        let strong_split = strong
            .split(&instance.spec, &instance.members)
            .expect("strong split");
        let strong_opt = strong_split.part_count() <= 20
            && is_strong_local_optimal(&instance.spec, &strong_split);
        per_family.entry(instance.family).or_default().push((
            quality_from_counts(best.part_count(), weak_split.part_count()),
            quality_from_counts(best.part_count(), strong_split.part_count()),
            strong_opt,
        ));
    }
    let rows = per_family
        .into_iter()
        .map(|(family, samples)| E3Row {
            family,
            instances: samples.len(),
            weak_quality: mean(samples.iter().map(|s| s.0)),
            strong_quality: mean(samples.iter().map(|s| s.1)),
            strong_optimality_rate: samples.iter().filter(|s| s.2).count() as f64
                / samples.len() as f64,
        })
        .collect();
    E3Report { rows }
}

// ---------------------------------------------------------------------------
// E4 — running time of the three correctors
// ---------------------------------------------------------------------------

/// One row of experiment E4.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Instance label.
    pub label: String,
    /// Composite size (atomic tasks).
    pub size: usize,
    /// Weak corrector time in microseconds.
    pub weak_us: f64,
    /// Strong corrector time in microseconds.
    pub strong_us: f64,
    /// Optimal corrector time in microseconds (None when skipped).
    pub optimal_us: Option<f64>,
}

/// Result of experiment E4.
#[derive(Debug, Clone)]
pub struct E4Report {
    /// Rows ordered by composite size.
    pub rows: Vec<E4Row>,
}

impl E4Report {
    /// Renders the report as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "E4  Corrector running time (one unsound composite task)",
            &[
                "instance",
                "tasks",
                "weak (us)",
                "strong (us)",
                "optimal (us)",
                "optimal/strong",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.label.clone(),
                row.size.to_string(),
                format!("{:.1}", row.weak_us),
                format!("{:.1}", row.strong_us),
                row.optimal_us.map_or("-".into(), |v| format!("{v:.1}")),
                row.optimal_us.map_or("-".into(), |v| {
                    format!("{:.1}x", v / row.strong_us.max(1e-9))
                }),
            ]);
        }
        table
    }
}

/// Runs experiment E4: times the three correctors on crossing-group hard
/// instances of increasing size. The optimal corrector is only run on
/// composites with at most `optimal_limit` tasks.
#[must_use]
pub fn e4_runtime(sizes: &[usize], large_sizes: &[usize], optimal_limit: usize) -> E4Report {
    let mut rows = Vec::new();
    let weak = WeakCorrector::new();
    let strong = StrongCorrector::new();
    let optimal = OptimalCorrector::with_limit(optimal_limit);
    for &size in sizes.iter().chain(large_sizes.iter()) {
        let groups = (size / 4).max(1);
        let instance = crossing_groups(groups).expect("hard instance");
        let n = instance.members.len();
        let weak_us = micros(|| {
            let _ = split_parts(&weak, &instance.spec, &instance.members);
        });
        let strong_us = micros(|| {
            let _ = split_parts(&strong, &instance.spec, &instance.members);
        });
        let optimal_us = if n <= optimal_limit {
            Some(micros(|| {
                let _ = split_parts(&optimal, &instance.spec, &instance.members);
            }))
        } else {
            None
        };
        rows.push(E4Row {
            label: format!("crossing-groups({groups})"),
            size: n,
            weak_us,
            strong_us,
            optimal_us,
        });
    }
    // one realistic instance from the generated repository for context
    let realistic = sized_composite(10, 17);
    let weak_us = micros(|| {
        let _ = split_parts(&weak, &realistic.spec, &realistic.members);
    });
    let strong_us = micros(|| {
        let _ = split_parts(&strong, &realistic.spec, &realistic.members);
    });
    let optimal_us = (realistic.size() <= optimal_limit).then(|| {
        micros(|| {
            let _ = split_parts(&optimal, &realistic.spec, &realistic.members);
        })
    });
    rows.push(E4Row {
        label: realistic.label.clone(),
        size: realistic.size(),
        weak_us,
        strong_us,
        optimal_us,
    });
    rows.sort_by_key(|r| r.size);
    E4Report { rows }
}

// ---------------------------------------------------------------------------
// E5 — validator: Proposition 2.1 vs definition-based checks
// ---------------------------------------------------------------------------

/// One row of experiment E5.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Number of atomic tasks in the workflow.
    pub tasks: usize,
    /// Number of composite tasks in the view.
    pub composites: usize,
    /// Proposition 2.1 validator time (microseconds).
    pub proposition_us: f64,
    /// Definition 2.1 (transitive-closure) check time.
    pub definition_us: f64,
    /// Naive path-enumeration check time (only for small workflows).
    pub naive_us: Option<f64>,
    /// Whether the two polynomial checks agreed on soundness.
    pub checks_agree: bool,
}

/// Result of experiment E5.
#[derive(Debug, Clone)]
pub struct E5Report {
    /// Rows ordered by workflow size.
    pub rows: Vec<E5Row>,
}

impl E5Report {
    /// Renders the report as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "E5  View validation cost: Proposition 2.1 vs definition-based checks",
            &[
                "tasks",
                "composites",
                "Prop 2.1 (us)",
                "Def 2.1 closure (us)",
                "naive paths (us)",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.tasks.to_string(),
                row.composites.to_string(),
                format!("{:.1}", row.proposition_us),
                format!("{:.1}", row.definition_us),
                row.naive_us.map_or("-".into(), |v| format!("{v:.1}")),
            ]);
        }
        table
    }
}

/// Runs experiment E5 for the given workflow sizes (task counts).
#[must_use]
pub fn e5_validator(task_counts: &[usize]) -> E5Report {
    let mut rows = Vec::new();
    for &target in task_counts {
        let spec = layered_workflow(&LayeredConfig::sized(target), 23);
        let view = topological_block_view(&spec, 4, "blocks").expect("block view");
        let proposition_us = micros(|| {
            let _ = validate(&spec, &view);
        });
        let definition_us = micros(|| {
            let _ = validate_by_definition(&spec, &view);
        });
        let naive_us = (spec.task_count() <= 60).then(|| {
            micros(|| {
                let _ = validate_naive(&spec, &view, 60);
            })
        });
        let prop_sound = validate(&spec, &view).is_sound();
        let def_sound = validate_by_definition(&spec, &view).is_sound();
        rows.push(E5Row {
            tasks: spec.task_count(),
            composites: view.composite_count(),
            proposition_us,
            definition_us,
            naive_us,
            // Proposition 2.1 is conservative: composite soundness implies
            // definition soundness, so "prop sound but def unsound" would be
            // a bug; the reverse can legitimately differ.
            checks_agree: !prop_sound || def_sound,
        });
    }
    E5Report { rows }
}

// ---------------------------------------------------------------------------
// E6 — provenance correctness and query cost
// ---------------------------------------------------------------------------

/// One row of experiment E6.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Case label.
    pub case: String,
    /// Mean provenance precision through the unsound view.
    pub precision_unsound: f64,
    /// Mean provenance precision through the corrected view.
    pub precision_corrected: f64,
    /// Mean recall through the unsound view (always 1.0 — views never hide
    /// true provenance).
    pub recall: f64,
    /// Mean edges traversed by view-level queries.
    pub view_edges: f64,
    /// Mean edges traversed by workflow-level queries.
    pub workflow_edges: f64,
}

/// Result of experiment E6.
#[derive(Debug, Clone)]
pub struct E6Report {
    /// Per-case rows.
    pub rows: Vec<E6Row>,
}

impl E6Report {
    /// Renders the report as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "E6  Provenance through views: correctness and traversal cost",
            &[
                "case",
                "precision (unsound)",
                "precision (corrected)",
                "recall",
                "view edges",
                "workflow edges",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.case.clone(),
                format!("{:.3}", row.precision_unsound),
                format!("{:.3}", row.precision_corrected),
                format!("{:.3}", row.recall),
                format!("{:.1}", row.view_edges),
                format!("{:.1}", row.workflow_edges),
            ]);
        }
        table
    }

    /// Mean unsound-view precision across cases.
    #[must_use]
    pub fn mean_precision_unsound(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.precision_unsound))
    }

    /// Mean corrected-view precision across cases.
    #[must_use]
    pub fn mean_precision_corrected(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.precision_corrected))
    }
}

/// Runs experiment E6 on the Figure 1 fixture plus generated cases.
#[must_use]
pub fn e6_provenance(seeds: std::ops::Range<u64>) -> E6Report {
    let mut rows = Vec::new();
    let fixture = figure1();
    rows.push(provenance_row(
        "figure-1".to_owned(),
        &fixture.spec,
        &fixture.view,
    ));
    for case in wolves_repo::suite::standard_suite(seeds) {
        if validate(&case.spec, &case.view).is_sound() {
            continue;
        }
        rows.push(provenance_row(case.name.clone(), &case.spec, &case.view));
    }
    E6Report { rows }
}

fn provenance_row(
    case: String,
    spec: &WorkflowSpec,
    view: &wolves_workflow::WorkflowView,
) -> E6Row {
    let (corrected, _) = wolves_core::correct::correct_view(spec, view, &StrongCorrector::new())
        .expect("correction succeeds");
    let mut precision_unsound = Vec::new();
    let mut precision_corrected = Vec::new();
    let mut recalls = Vec::new();
    let mut view_edges = Vec::new();
    let mut workflow_edges = Vec::new();
    for subject in spec.task_ids() {
        let truth = workflow_level_provenance(spec, subject);
        if truth.tasks.is_empty() {
            continue;
        }
        let before = view_level_provenance(spec, view, subject);
        let after = view_level_provenance(spec, &corrected, subject);
        let before_accuracy = compare_to_ground_truth(&truth, &before);
        let after_accuracy = compare_to_ground_truth(&truth, &after);
        precision_unsound.push(before_accuracy.precision);
        precision_corrected.push(after_accuracy.precision);
        recalls.push(before_accuracy.recall);
        view_edges.push(before.edges_traversed as f64);
        workflow_edges.push(truth.edges_traversed as f64);
    }
    E6Row {
        case,
        precision_unsound: mean(precision_unsound.into_iter()),
        precision_corrected: mean(precision_corrected.into_iter()),
        recall: mean(recalls.into_iter()),
        view_edges: mean(view_edges.into_iter()),
        workflow_edges: mean(workflow_edges.into_iter()),
    }
}

// ---------------------------------------------------------------------------
// E7 — estimator accuracy
// ---------------------------------------------------------------------------

/// One row of experiment E7.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Corrector strategy.
    pub strategy: &'static str,
    /// Number of held-out composites evaluated.
    pub evaluations: usize,
    /// Mean relative error of the running-time estimate (|est-act| / act).
    pub time_relative_error: f64,
    /// Mean absolute error of the quality estimate.
    pub quality_absolute_error: f64,
}

/// Result of experiment E7.
#[derive(Debug, Clone)]
pub struct E7Report {
    /// Per-strategy rows.
    pub rows: Vec<E7Row>,
}

impl E7Report {
    /// Renders the report as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "E7  Estimator accuracy (grouping past corrections by size and density)",
            &[
                "corrector",
                "evaluations",
                "time rel. error",
                "quality abs. error",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.strategy.into(),
                row.evaluations.to_string(),
                format!("{:.2}", row.time_relative_error),
                format!("{:.3}", row.quality_absolute_error),
            ]);
        }
        table
    }
}

/// Runs experiment E7: trains the estimation registry on composites from the
/// training seeds and evaluates its predictions on the evaluation seeds.
#[must_use]
pub fn e7_estimator(
    training_seeds: std::ops::Range<u64>,
    evaluation_seeds: std::ops::Range<u64>,
    max_size: usize,
) -> E7Report {
    let registry = EstimationRegistry::new();
    let optimal = OptimalCorrector::with_limit(max_size.max(4));
    let strategies: [(Strategy, Box<dyn Corrector>); 2] = [
        (Strategy::Weak, Box::new(WeakCorrector::new())),
        (Strategy::Strong, Box::new(StrongCorrector::new())),
    ];
    // training phase: record observed time and quality per workload class
    for instance in unsound_composites_from_suite(training_seeds, 3, max_size) {
        let Ok(best) = optimal.split(&instance.spec, &instance.members) else {
            continue;
        };
        let class = WorkloadClass::classify(&instance.spec, &instance.members);
        for (strategy, corrector) in &strategies {
            let start = Instant::now();
            let split = corrector
                .split(&instance.spec, &instance.members)
                .expect("polynomial correctors never fail");
            registry.record(
                class,
                CorrectionSample {
                    strategy: *strategy,
                    elapsed: start.elapsed(),
                    quality: quality_from_counts(best.part_count(), split.part_count()),
                },
            );
        }
    }
    // evaluation phase: compare estimates with fresh observations
    let mut accumulators: std::collections::BTreeMap<&'static str, (usize, f64, f64)> =
        std::collections::BTreeMap::new();
    for instance in unsound_composites_from_suite(evaluation_seeds, 3, max_size) {
        let Ok(best) = optimal.split(&instance.spec, &instance.members) else {
            continue;
        };
        let class = WorkloadClass::classify(&instance.spec, &instance.members);
        for (strategy, corrector) in &strategies {
            let Some(estimate) = registry.estimate(class, *strategy) else {
                continue;
            };
            let start = Instant::now();
            let split = corrector
                .split(&instance.spec, &instance.members)
                .expect("polynomial correctors never fail");
            let actual_time = start.elapsed().as_secs_f64().max(1e-9);
            let actual_quality = quality_from_counts(best.part_count(), split.part_count());
            let time_error = (estimate.avg_elapsed.as_secs_f64() - actual_time).abs() / actual_time;
            let quality_error = (estimate.avg_quality - actual_quality).abs();
            let entry = accumulators.entry(strategy.name()).or_insert((0, 0.0, 0.0));
            entry.0 += 1;
            entry.1 += time_error;
            entry.2 += quality_error;
        }
    }
    let rows = accumulators
        .into_iter()
        .map(|(strategy, (count, time_sum, quality_sum))| E7Row {
            strategy,
            evaluations: count,
            time_relative_error: if count == 0 {
                0.0
            } else {
                time_sum / count as f64
            },
            quality_absolute_error: if count == 0 {
                0.0
            } else {
                quality_sum / count as f64
            },
        })
        .collect();
    E7Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_the_motivating_example() {
        let report = e1_figure1();
        assert_eq!(report.unsound_composites.len(), 1);
        assert!(report.unsound_composites[0].contains("16"));
        assert!(report.spurious_dependencies >= 1);
        assert!(report.precision_unsound < 1.0);
        assert!((report.precision_corrected - 1.0).abs() < 1e-9);
        assert_eq!(report.composites_before_after, (7, 8));
        assert!(report.to_table().render().contains("E1"));
    }

    #[test]
    fn e2_reproduces_figure3_counts() {
        let report = e2_figure3();
        assert_eq!(report.weak_parts, 8);
        assert_eq!(report.strong_parts, 5);
        assert_eq!(report.optimal_parts, 5);
        assert!(report.strong_is_strong_local_optimal);
        assert_eq!(report.to_table().row_count(), 3);
    }

    #[test]
    fn e3_strong_quality_dominates_weak() {
        let report = e3_quality(0..2, 12);
        assert!(!report.rows.is_empty());
        assert!(report.overall_strong_quality() >= report.overall_weak_quality() - 1e-9);
        assert!(report.overall_strong_quality() > 0.9);
        for row in &report.rows {
            assert!(
                row.strong_optimality_rate > 0.99,
                "family {} fell short",
                row.family
            );
        }
    }

    #[test]
    fn e4_orders_runtime_as_expected() {
        let report = e4_runtime(&[8, 12], &[40], 14);
        assert!(report.rows.len() >= 3);
        let with_optimal: Vec<&E4Row> = report
            .rows
            .iter()
            .filter(|r| r.optimal_us.is_some())
            .collect();
        assert!(!with_optimal.is_empty());
        let large: Vec<&E4Row> = report.rows.iter().filter(|r| r.size >= 40).collect();
        assert!(!large.is_empty());
        assert!(large.iter().all(|r| r.optimal_us.is_none()));
    }

    #[test]
    fn e5_validator_checks_are_consistent() {
        let report = e5_validator(&[30, 60]);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(row.checks_agree);
            assert!(row.proposition_us > 0.0);
        }
    }

    #[test]
    fn e6_correction_restores_precision() {
        let report = e6_provenance(0..1);
        assert!(!report.rows.is_empty());
        assert!(report.mean_precision_corrected() >= report.mean_precision_unsound());
        let figure1 = &report.rows[0];
        assert!(figure1.precision_corrected > figure1.precision_unsound);
        assert!((figure1.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn e7_estimator_produces_rows_for_both_polynomial_correctors() {
        let report = e7_estimator(0..2, 2..4, 10);
        assert!(!report.rows.is_empty());
        for row in &report.rows {
            assert!(row.evaluations > 0);
            assert!(row.quality_absolute_error <= 1.0);
        }
    }
}
