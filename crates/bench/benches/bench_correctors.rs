//! Criterion benchmarks for experiments E2/E3/E4: the three correctors on
//! the Figure 3 composite and on crossing-group instances of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wolves_core::correct::{Corrector, OptimalCorrector, StrongCorrector, WeakCorrector};
use wolves_core::hardness::crossing_groups;
use wolves_repo::figure3;

fn bench_figure3(c: &mut Criterion) {
    let fixture = figure3();
    let mut group = c.benchmark_group("figure3_correctors");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("weak", |b| {
        b.iter(|| {
            WeakCorrector::new()
                .split(&fixture.spec, &fixture.members)
                .unwrap()
                .part_count()
        });
    });
    group.bench_function("strong", |b| {
        b.iter(|| {
            StrongCorrector::new()
                .split(&fixture.spec, &fixture.members)
                .unwrap()
                .part_count()
        });
    });
    group.bench_function("optimal", |b| {
        b.iter(|| {
            OptimalCorrector::new()
                .split(&fixture.spec, &fixture.members)
                .unwrap()
                .part_count()
        });
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("corrector_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for groups_count in [2usize, 3, 4, 10, 25] {
        let instance = crossing_groups(groups_count).unwrap();
        let n = instance.members.len();
        group.bench_with_input(BenchmarkId::new("weak", n), &instance, |b, inst| {
            b.iter(|| {
                WeakCorrector::new()
                    .split(&inst.spec, &inst.members)
                    .unwrap()
                    .part_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("strong", n), &instance, |b, inst| {
            b.iter(|| {
                StrongCorrector::new()
                    .split(&inst.spec, &inst.members)
                    .unwrap()
                    .part_count()
            });
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("optimal", n), &instance, |b, inst| {
                b.iter(|| {
                    OptimalCorrector::new()
                        .split(&inst.spec, &inst.members)
                        .unwrap()
                        .part_count()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure3, bench_scaling);
criterion_main!(benches);
