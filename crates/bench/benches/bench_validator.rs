//! Criterion benchmarks for experiment E5: view validation via
//! Proposition 2.1 versus the definition-based checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wolves_core::validate::{validate, validate_by_definition, validate_naive};
use wolves_repo::generate::{layered_workflow, LayeredConfig};
use wolves_repo::views::topological_block_view;

fn bench_validator(c: &mut Criterion) {
    let mut group = c.benchmark_group("validator");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for target in [30usize, 120, 480] {
        let spec = layered_workflow(&LayeredConfig::sized(target), 23);
        let view = topological_block_view(&spec, 4, "blocks").unwrap();
        let tasks = spec.task_count();
        // warm the reachability cache so both checks are compared fairly
        let _ = spec.reachability();
        group.bench_with_input(
            BenchmarkId::new("proposition_2_1", tasks),
            &(&spec, &view),
            |b, (spec, view)| b.iter(|| validate(spec, view).is_sound()),
        );
        group.bench_with_input(
            BenchmarkId::new("definition_closure", tasks),
            &(&spec, &view),
            |b, (spec, view)| b.iter(|| validate_by_definition(spec, view).is_sound()),
        );
        if tasks <= 40 {
            group.bench_with_input(
                BenchmarkId::new("naive_path_enumeration", tasks),
                &(&spec, &view),
                |b, (spec, view)| b.iter(|| validate_naive(spec, view, 60).map(|r| r.is_sound())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_validator);
criterion_main!(benches);
