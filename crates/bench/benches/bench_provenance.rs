//! Criterion benchmarks for experiment E6: provenance queries at the
//! workflow level versus the view level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wolves_provenance::{simulate_execution, view_level_provenance, workflow_level_provenance};
use wolves_repo::generate::{layered_workflow, LayeredConfig};
use wolves_repo::views::topological_block_view;
use wolves_workflow::TaskId;

fn bench_provenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_queries");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for target in [60usize, 240, 960] {
        let spec = layered_workflow(&LayeredConfig::sized(target), 31);
        let view = topological_block_view(&spec, 5, "blocks").unwrap();
        // query the provenance of a sink task (deepest lineage)
        let subject: TaskId = wolves_graph::algo::leaves(spec.graph())
            .into_iter()
            .next()
            .expect("workflow has a sink");
        let tasks = spec.task_count();
        group.bench_with_input(
            BenchmarkId::new("workflow_level", tasks),
            &(&spec, subject),
            |b, (spec, subject)| b.iter(|| workflow_level_provenance(spec, *subject).tasks.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("view_level", tasks),
            &(&spec, &view, subject),
            |b, (spec, view, subject)| {
                b.iter(|| view_level_provenance(spec, view, *subject).tasks.len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("execution_simulation", tasks),
            &spec,
            |b, spec| b.iter(|| simulate_execution(spec, 7).graph.node_count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_provenance);
criterion_main!(benches);
