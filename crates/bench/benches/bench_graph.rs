//! Criterion benchmarks for the graph substrate: reachability-matrix
//! construction and queries, the building block of every soundness check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wolves_graph::reach::ReachMatrix;
use wolves_repo::generate::{layered_workflow, LayeredConfig};

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for target in [100usize, 400, 1600] {
        let spec = layered_workflow(&LayeredConfig::sized(target), 41);
        let graph = spec.graph();
        let tasks = spec.task_count();
        group.bench_with_input(
            BenchmarkId::new("build_matrix", tasks),
            graph,
            |b, graph| {
                b.iter(|| ReachMatrix::build(graph).unwrap().node_bound());
            },
        );
        let matrix = ReachMatrix::build(graph).unwrap();
        let nodes: Vec<_> = graph.node_ids().collect();
        group.bench_with_input(
            BenchmarkId::new("all_pairs_queries", tasks),
            &(&matrix, &nodes),
            |b, (matrix, nodes)| {
                b.iter(|| {
                    let mut reachable_pairs = 0usize;
                    for &u in nodes.iter() {
                        for &v in nodes.iter() {
                            if matrix.reachable(u, v) {
                                reachable_pairs += 1;
                            }
                        }
                    }
                    reachable_pairs
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("descendant_counts", tasks),
            &(&matrix, &nodes),
            |b, (matrix, nodes)| {
                b.iter(|| {
                    nodes
                        .iter()
                        .map(|&u| matrix.descendant_count(u))
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("topological_sort", tasks),
            graph,
            |b, graph| b.iter(|| wolves_graph::topo::topological_sort(graph).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reachability);
criterion_main!(benches);
