//! Correction of unsound workflow views (paper §2.2).
//!
//! WOLVES repairs an unsound view by *splitting* each unsound composite task
//! into smaller, sound composite tasks. Three correctors are provided:
//!
//! | Corrector | Guarantee | Complexity |
//! |-----------|-----------|------------|
//! | [`WeakCorrector`]    | weak local optimality (Def. 2.5)   | polynomial |
//! | [`StrongCorrector`]  | strong local optimality (Def. 2.6) | polynomial |
//! | [`OptimalCorrector`] | minimum number of parts            | exponential (NP-hard) |
//!
//! [`correct_view`] drives a corrector over every unsound composite task of a
//! view and produces a corrected view plus a [`CorrectionReport`].

pub mod check;
pub mod context;
pub mod optimal;
pub mod split;
pub mod strong;
pub mod weak;

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use wolves_workflow::{CompositeTaskId, TaskId, WorkflowSpec, WorkflowView};

use crate::error::CoreError;
use crate::validate::validate;

pub use context::SplitContext;
pub use optimal::OptimalCorrector;
pub use split::Split;
pub use strong::StrongCorrector;
pub use weak::WeakCorrector;

/// A strategy name for choosing a corrector at run time (CLI, experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Weak local optimality (Definition 2.5).
    Weak,
    /// Strong local optimality (Definition 2.6).
    Strong,
    /// Exact minimum split (exponential).
    Optimal,
}

impl Strategy {
    /// All strategies, in the order the paper discusses them.
    pub const ALL: [Strategy; 3] = [Strategy::Weak, Strategy::Strong, Strategy::Optimal];

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Weak => "weak",
            Strategy::Strong => "strong",
            Strategy::Optimal => "optimal",
        }
    }

    /// Parses a strategy name (case-insensitive).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "weak" | "weak-local-optimal" => Some(Strategy::Weak),
            "strong" | "strong-local-optimal" => Some(Strategy::Strong),
            "optimal" | "exact" => Some(Strategy::Optimal),
            _ => None,
        }
    }

    /// Instantiates the corrector implementing this strategy.
    #[must_use]
    pub fn corrector(self) -> Box<dyn Corrector> {
        match self {
            Strategy::Weak => Box::new(WeakCorrector::new()),
            Strategy::Strong => Box::new(StrongCorrector::new()),
            Strategy::Optimal => Box::new(OptimalCorrector::new()),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A view-correction algorithm: splits one unsound composite task into sound
/// parts.
pub trait Corrector {
    /// Short identifier used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Splits the composite task with the given members into sound parts.
    ///
    /// # Errors
    /// Implementations may refuse inputs (e.g. the optimal corrector limits
    /// the composite size).
    fn split(&self, spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> Result<Split, CoreError>;
}

/// What happened to one composite task during view correction.
#[derive(Debug, Clone)]
pub struct CompositeCorrection {
    /// The unsound composite that was split.
    pub original: CompositeTaskId,
    /// Name of the original composite.
    pub original_name: String,
    /// Number of atomic tasks in the original composite.
    pub task_count: usize,
    /// The new composite tasks that replaced it.
    pub replacements: Vec<CompositeTaskId>,
    /// The split that was applied.
    pub split: Split,
    /// Wall-clock time spent inside the corrector for this composite.
    pub elapsed: Duration,
}

/// Summary of a whole-view correction run.
#[derive(Debug, Clone)]
pub struct CorrectionReport {
    /// Name of the corrector that was used.
    pub corrector: &'static str,
    /// Per-composite outcomes (empty when the view was already sound).
    pub corrections: Vec<CompositeCorrection>,
    /// Composite-task count of the view before correction.
    pub composites_before: usize,
    /// Composite-task count of the view after correction.
    pub composites_after: usize,
    /// Total corrector time (sum over composites).
    pub elapsed: Duration,
}

impl CorrectionReport {
    /// `true` if the view required no changes.
    #[must_use]
    pub fn was_already_sound(&self) -> bool {
        self.corrections.is_empty()
    }

    /// Total number of new composite tasks produced by splitting.
    #[must_use]
    pub fn parts_produced(&self) -> usize {
        self.corrections.iter().map(|c| c.replacements.len()).sum()
    }
}

/// Splits one composite task of a view using the given corrector, updating
/// the view in place.
///
/// # Errors
/// Propagates corrector errors (e.g. size limits) and view-manipulation
/// errors; the view is left untouched on error.
pub fn correct_composite(
    spec: &WorkflowSpec,
    view: &mut WorkflowView,
    composite: CompositeTaskId,
    corrector: &dyn Corrector,
) -> Result<CompositeCorrection, CoreError> {
    let original = view.composite(composite)?.clone();
    let start = Instant::now();
    let split = corrector.split(spec, original.members())?;
    let elapsed = start.elapsed();
    let replacements = view.split_composite(composite, split.to_groups())?;
    Ok(CompositeCorrection {
        original: composite,
        original_name: original.name.clone(),
        task_count: original.len(),
        replacements,
        split,
        elapsed,
    })
}

/// Corrects every unsound composite task of the view (Proposition 2.1: the
/// view is sound once every composite task is sound). Returns the corrected
/// view and a report; the input view is not modified.
///
/// # Errors
/// Propagates corrector errors; in that case no corrected view is produced.
pub fn correct_view(
    spec: &WorkflowSpec,
    view: &WorkflowView,
    corrector: &dyn Corrector,
) -> Result<(WorkflowView, CorrectionReport), CoreError> {
    let report = validate(spec, view);
    let mut corrected = view.clone();
    let mut corrections = Vec::new();
    let mut total = Duration::ZERO;
    for composite in report.unsound_composites() {
        let outcome = correct_composite(spec, &mut corrected, composite, corrector)?;
        total += outcome.elapsed;
        corrections.push(outcome);
    }
    let report = CorrectionReport {
        corrector: corrector.name(),
        corrections,
        composites_before: view.composite_count(),
        composites_after: corrected.composite_count(),
        elapsed: total,
    };
    Ok((corrected, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use wolves_workflow::builder::ViewBuilder;
    use wolves_workflow::WorkflowBuilder;

    /// The Figure 1 workflow and its (unsound) Figure 1(b) view.
    fn figure1() -> (WorkflowSpec, WorkflowView) {
        let mut b = WorkflowBuilder::new("phylogenomics");
        let names = [
            "Select entries",
            "Split entries",
            "Extract annotations",
            "Curate annotations",
            "Format annotations",
            "Extract sequences",
            "Create alignment",
            "Format alignment",
            "Check other annotations",
            "Process annotations",
            "Build phylo tree",
            "Display tree",
        ];
        let t: Vec<TaskId> = names.iter().map(|n| b.task(*n)).collect();
        for (from, to) in [
            (0, 1),
            (1, 2),
            (1, 5),
            (2, 3),
            (3, 4),
            (4, 10),
            (5, 6),
            (6, 7),
            (7, 10),
            (8, 9),
            (9, 10),
            (10, 11),
        ] {
            b.edge(t[from], t[to]).unwrap();
        }
        let spec = b.build().unwrap();
        let view = ViewBuilder::new(&spec, "figure1b")
            .group("Retrieve data (13)".to_owned(), vec![t[0], t[1]])
            .group("Annotations (14)".to_owned(), vec![t[2]])
            .group("Sequences (15)".to_owned(), vec![t[5]])
            .group("Curate & align (16)".to_owned(), vec![t[3], t[6]])
            .group("Format annotations (17)".to_owned(), vec![t[4]])
            .group("Format alignment (18)".to_owned(), vec![t[7]])
            .group(
                "Build phylo tree (19)".to_owned(),
                vec![t[8], t[9], t[10], t[11]],
            )
            .build()
            .unwrap();
        (spec, view)
    }

    #[test]
    fn correct_view_fixes_the_figure1_view() {
        let (spec, view) = figure1();
        assert!(!validate(&spec, &view).is_sound());
        for strategy in Strategy::ALL {
            let corrector = strategy.corrector();
            let (corrected, report) = correct_view(&spec, &view, corrector.as_ref()).unwrap();
            assert!(
                validate(&spec, &corrected).is_sound(),
                "{strategy} must produce a sound view"
            );
            assert_eq!(report.corrections.len(), 1);
            assert_eq!(report.corrections[0].task_count, 2);
            assert_eq!(report.corrections[0].replacements.len(), 2);
            assert_eq!(report.composites_before, 7);
            assert_eq!(report.composites_after, 8);
            assert!(!report.was_already_sound());
        }
    }

    #[test]
    fn sound_views_are_untouched() {
        let (spec, _) = figure1();
        let singleton_view = WorkflowView::singletons(&spec, "fine");
        let (corrected, report) =
            correct_view(&spec, &singleton_view, &WeakCorrector::new()).unwrap();
        assert!(report.was_already_sound());
        assert_eq!(report.parts_produced(), 0);
        assert_eq!(
            corrected.composite_count(),
            singleton_view.composite_count()
        );
    }

    #[test]
    fn strategy_parsing_and_names() {
        assert_eq!(Strategy::parse("Weak"), Some(Strategy::Weak));
        assert_eq!(Strategy::parse("STRONG"), Some(Strategy::Strong));
        assert_eq!(Strategy::parse("exact"), Some(Strategy::Optimal));
        assert_eq!(Strategy::parse("nonsense"), None);
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.name()), Some(s));
            assert!(!s.corrector().name().is_empty());
        }
    }

    #[test]
    fn correct_composite_reports_the_replacements() {
        let (spec, view) = figure1();
        let report = validate(&spec, &view);
        let unsound = report.unsound_composites()[0];
        let mut working = view.clone();
        let outcome =
            correct_composite(&spec, &mut working, unsound, &StrongCorrector::new()).unwrap();
        assert_eq!(outcome.original, unsound);
        assert_eq!(outcome.split.part_count(), outcome.replacements.len());
        assert!(outcome.original_name.contains("16"));
    }
}
