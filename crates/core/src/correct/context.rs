//! Pre-computed context for splitting one composite task.
//!
//! All three correctors repeatedly ask the same questions about subsets of
//! the composite's members: what is the boundary of this subset, is it sound,
//! which external predecessors/successors does a member have. [`SplitContext`]
//! answers these from dense per-member tables built once per composite.

use std::collections::{BTreeMap, BTreeSet};

use wolves_workflow::{TaskId, WorkflowSpec};

/// Dense, index-based view of one composite task, ready for the correctors.
///
/// Members are numbered `0..len()` in ascending [`TaskId`] order; all
/// corrector-internal sets are sets of these indices.
#[derive(Debug)]
pub struct SplitContext<'a> {
    spec: &'a WorkflowSpec,
    members: Vec<TaskId>,
    index_of: BTreeMap<TaskId, usize>,
    /// `true` if the member has a predecessor outside the composite.
    ext_in: Vec<bool>,
    /// `true` if the member has a successor outside the composite.
    ext_out: Vec<bool>,
    /// Direct predecessors of each member that lie inside the composite.
    preds_within: Vec<Vec<usize>>,
    /// Direct successors of each member that lie inside the composite.
    succs_within: Vec<Vec<usize>>,
}

impl<'a> SplitContext<'a> {
    /// Builds the context for the composite task with the given members.
    #[must_use]
    pub fn new(spec: &'a WorkflowSpec, members: &BTreeSet<TaskId>) -> Self {
        let member_vec: Vec<TaskId> = members.iter().copied().collect();
        let index_of: BTreeMap<TaskId, usize> = member_vec
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        let n = member_vec.len();
        let mut ext_in = vec![false; n];
        let mut ext_out = vec![false; n];
        let mut preds_within = vec![Vec::new(); n];
        let mut succs_within = vec![Vec::new(); n];
        for (i, &task) in member_vec.iter().enumerate() {
            for pred in spec.predecessors(task) {
                match index_of.get(&pred) {
                    Some(&p) => preds_within[i].push(p),
                    None => ext_in[i] = true,
                }
            }
            for succ in spec.successors(task) {
                match index_of.get(&succ) {
                    Some(&s) => succs_within[i].push(s),
                    None => ext_out[i] = true,
                }
            }
            preds_within[i].sort_unstable();
            preds_within[i].dedup();
            succs_within[i].sort_unstable();
            succs_within[i].dedup();
        }
        SplitContext {
            spec,
            members: member_vec,
            index_of,
            ext_in,
            ext_out,
            preds_within,
            succs_within,
        }
    }

    /// Number of member tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the composite has no members (never the case for composites
    /// coming from a [`wolves_workflow::WorkflowView`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member task ids in index order.
    #[must_use]
    pub fn members(&self) -> &[TaskId] {
        &self.members
    }

    /// The workflow specification this context was built from.
    #[must_use]
    pub fn spec(&self) -> &WorkflowSpec {
        self.spec
    }

    /// Task id of member index `i`.
    #[must_use]
    pub fn task(&self, i: usize) -> TaskId {
        self.members[i]
    }

    /// Member index of a task id, if it belongs to the composite.
    #[must_use]
    pub fn index(&self, task: TaskId) -> Option<usize> {
        self.index_of.get(&task).copied()
    }

    /// `reach(i, j)` in the workflow specification (paths may leave the
    /// composite).
    #[must_use]
    pub fn reaches(&self, i: usize, j: usize) -> bool {
        self.spec
            .reachability()
            .reachable(self.members[i], self.members[j])
    }

    /// `true` iff member `i` belongs to `U.in` for the subset `set`.
    #[must_use]
    pub fn is_input(&self, i: usize, set: &BTreeSet<usize>) -> bool {
        self.ext_in[i] || self.preds_within[i].iter().any(|p| !set.contains(p))
    }

    /// `true` iff member `i` belongs to `U.out` for the subset `set`.
    #[must_use]
    pub fn is_output(&self, i: usize, set: &BTreeSet<usize>) -> bool {
        self.ext_out[i] || self.succs_within[i].iter().any(|s| !set.contains(s))
    }

    /// The boundary `(U.in, U.out)` of a subset, as member indices.
    #[must_use]
    pub fn boundary_of(&self, set: &BTreeSet<usize>) -> (Vec<usize>, Vec<usize>) {
        let inputs = set
            .iter()
            .copied()
            .filter(|&i| self.is_input(i, set))
            .collect();
        let outputs = set
            .iter()
            .copied()
            .filter(|&i| self.is_output(i, set))
            .collect();
        (inputs, outputs)
    }

    /// Returns the first `(input, output)` pair violating soundness of the
    /// subset, or `None` if the subset is sound.
    #[must_use]
    pub fn first_violation(&self, set: &BTreeSet<usize>) -> Option<(usize, usize)> {
        let (inputs, outputs) = self.boundary_of(set);
        for &i in &inputs {
            for &o in &outputs {
                if !self.reaches(i, o) {
                    return Some((i, o));
                }
            }
        }
        None
    }

    /// Soundness of a subset of member indices (Definition 2.3 restricted to
    /// the composite being split).
    #[must_use]
    pub fn is_sound_subset(&self, set: &BTreeSet<usize>) -> bool {
        self.first_violation(set).is_none()
    }

    /// Direct predecessors of member `i` that lie inside the composite but
    /// outside `set`, plus a flag saying whether `i` also has a predecessor
    /// outside the composite (in which case `i` can never leave `U.in`).
    #[must_use]
    pub fn missing_preds(&self, i: usize, set: &BTreeSet<usize>) -> (Vec<usize>, bool) {
        let missing = self.preds_within[i]
            .iter()
            .copied()
            .filter(|p| !set.contains(p))
            .collect();
        (missing, self.ext_in[i])
    }

    /// Direct successors of member `i` inside the composite but outside
    /// `set`, plus a flag for successors outside the composite.
    #[must_use]
    pub fn missing_succs(&self, i: usize, set: &BTreeSet<usize>) -> (Vec<usize>, bool) {
        let missing = self.succs_within[i]
            .iter()
            .copied()
            .filter(|s| !set.contains(s))
            .collect();
        (missing, self.ext_out[i])
    }

    /// Converts a partition expressed in member indices back into task ids.
    #[must_use]
    pub fn to_task_sets(&self, parts: &[BTreeSet<usize>]) -> Vec<BTreeSet<TaskId>> {
        parts
            .iter()
            .map(|part| part.iter().map(|&i| self.members[i]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_workflow::WorkflowBuilder;

    /// s -> a -> b -> t,  s -> c -> t  (composite = {a, b, c})
    fn setup() -> (WorkflowSpec, BTreeSet<TaskId>, Vec<TaskId>) {
        let mut builder = WorkflowBuilder::new("ctx");
        let s = builder.task("s");
        let a = builder.task("a");
        let b = builder.task("b");
        let c = builder.task("c");
        let t = builder.task("t");
        builder.edge(s, a).unwrap();
        builder.edge(a, b).unwrap();
        builder.edge(b, t).unwrap();
        builder.edge(s, c).unwrap();
        builder.edge(c, t).unwrap();
        let spec = builder.build().unwrap();
        let members: BTreeSet<TaskId> = [a, b, c].into_iter().collect();
        (spec, members, vec![s, a, b, c, t])
    }

    #[test]
    fn indices_and_members_round_trip() {
        let (spec, members, ids) = setup();
        let ctx = SplitContext::new(&spec, &members);
        assert_eq!(ctx.len(), 3);
        for &task in &[ids[1], ids[2], ids[3]] {
            let idx = ctx.index(task).unwrap();
            assert_eq!(ctx.task(idx), task);
        }
        assert!(ctx.index(ids[0]).is_none());
    }

    #[test]
    fn boundary_of_subsets() {
        let (spec, members, ids) = setup();
        let ctx = SplitContext::new(&spec, &members);
        let ia = ctx.index(ids[1]).unwrap();
        let ib = ctx.index(ids[2]).unwrap();
        let ic = ctx.index(ids[3]).unwrap();
        // whole composite: in = {a, c} (from s), out = {b, c} (to t)
        let all: BTreeSet<usize> = [ia, ib, ic].into_iter().collect();
        let (inputs, outputs) = ctx.boundary_of(&all);
        assert_eq!(inputs, vec![ia, ic]);
        assert_eq!(outputs, vec![ib, ic]);
        // {a}: both boundaries
        let only_a: BTreeSet<usize> = [ia].into_iter().collect();
        assert!(ctx.is_input(ia, &only_a));
        assert!(ctx.is_output(ia, &only_a));
    }

    #[test]
    fn soundness_of_subsets() {
        let (spec, members, ids) = setup();
        let ctx = SplitContext::new(&spec, &members);
        let ia = ctx.index(ids[1]).unwrap();
        let ib = ctx.index(ids[2]).unwrap();
        let ic = ctx.index(ids[3]).unwrap();
        // {a, b} is sound (a -> b), {a, c} and the whole set are not
        let ab: BTreeSet<usize> = [ia, ib].into_iter().collect();
        assert!(ctx.is_sound_subset(&ab));
        let ac: BTreeSet<usize> = [ia, ic].into_iter().collect();
        assert!(!ctx.is_sound_subset(&ac));
        let all: BTreeSet<usize> = [ia, ib, ic].into_iter().collect();
        assert!(!ctx.is_sound_subset(&all));
        let violation = ctx.first_violation(&all).unwrap();
        // a cannot reach c (or c cannot reach b) — either witness is fine,
        // but it must be a genuine violation
        assert!(!ctx.reaches(violation.0, violation.1));
    }

    #[test]
    fn missing_preds_and_succs() {
        let (spec, members, ids) = setup();
        let ctx = SplitContext::new(&spec, &members);
        let ia = ctx.index(ids[1]).unwrap();
        let ib = ctx.index(ids[2]).unwrap();
        let only_b: BTreeSet<usize> = [ib].into_iter().collect();
        let (missing, blocked) = ctx.missing_preds(ib, &only_b);
        assert_eq!(missing, vec![ia]);
        assert!(!blocked, "b has no predecessors outside the composite");
        let (missing, blocked) = ctx.missing_preds(ia, &only_b);
        assert!(missing.is_empty());
        assert!(blocked, "a's predecessor s is outside the composite");
        let (_, out_blocked) = ctx.missing_succs(ib, &only_b);
        assert!(out_blocked, "b feeds t outside the composite");
    }

    #[test]
    fn to_task_sets_converts_back() {
        let (spec, members, ids) = setup();
        let ctx = SplitContext::new(&spec, &members);
        let ia = ctx.index(ids[1]).unwrap();
        let ib = ctx.index(ids[2]).unwrap();
        let ic = ctx.index(ids[3]).unwrap();
        let parts = vec![
            [ia, ib].into_iter().collect::<BTreeSet<usize>>(),
            [ic].into_iter().collect(),
        ];
        let task_parts = ctx.to_task_sets(&parts);
        assert_eq!(task_parts.len(), 2);
        assert!(task_parts[0].contains(&ids[1]));
        assert!(task_parts[0].contains(&ids[2]));
        assert!(task_parts[1].contains(&ids[3]));
    }
}
