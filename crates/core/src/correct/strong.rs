//! The strongly local optimal corrector (Definition 2.6).
//!
//! A split is *strong local optimal* when no subset of its parts is
//! combinable — a strictly stronger requirement than weak local optimality
//! (Definition 2.5): the paper's Figure 3 shows a case where no two parts are
//! combinable but four of them merge into one sound composite.
//!
//! The demo paper states that a polynomial `O(n³)` algorithm exists but
//! defers its description to the unavailable full paper. This module
//! implements a *closure-based* polynomial algorithm designed for the
//! reproduction (see `DESIGN.md` "Substitutions"):
//!
//! 1. merge combinable **pairs** until a fixpoint (as the weak corrector
//!    does), then
//! 2. for every remaining pair of parts, attempt a **boundary closure**: keep
//!    adding the parts that are forced in order to remove a violating
//!    `(input, output)` pair from the boundary — either all of the input's
//!    missing predecessors or all of the output's missing successors. Two
//!    deterministic policies (prefer-predecessors / prefer-successors) are
//!    tried. If a closure becomes sound, its parts are merged and the
//!    procedure restarts.
//!
//! Every closure terminates after at most `n` growth steps, so the whole
//! corrector is polynomial. The exhaustive verifier
//! [`crate::correct::check::is_strong_local_optimal`] is used by the test
//! suite and the quality experiment (E3) to confirm that the produced splits
//! satisfy Definition 2.6 on all evaluated instances.

use std::collections::BTreeSet;

use wolves_workflow::{TaskId, WorkflowSpec};

use crate::correct::context::SplitContext;
use crate::correct::split::Split;
use crate::correct::weak::merge_pairs_until_fixpoint;
use crate::correct::Corrector;
use crate::error::CoreError;

/// Polynomial-time corrector targeting strong local optimality.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrongCorrector;

impl StrongCorrector {
    /// Creates the corrector.
    #[must_use]
    pub fn new() -> Self {
        StrongCorrector
    }
}

/// Which side of a violating `(input, output)` pair the closure grows first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClosurePolicy {
    /// Prefer absorbing the input's missing predecessors.
    PreferPredecessors,
    /// Prefer absorbing the output's missing successors.
    PreferSuccessors,
}

impl Corrector for StrongCorrector {
    fn name(&self) -> &'static str {
        "strong-local-optimal"
    }

    fn split(&self, spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> Result<Split, CoreError> {
        let ctx = SplitContext::new(spec, members);
        let mut parts: Vec<BTreeSet<usize>> = (0..ctx.len()).map(|i| BTreeSet::from([i])).collect();
        loop {
            merge_pairs_until_fixpoint(&ctx, &mut parts);
            if !closure_merge_once(&ctx, &mut parts) {
                break;
            }
        }
        Ok(Split::new(ctx.to_task_sets(&parts)))
    }
}

/// Attempts one multi-part merge via boundary closures. Returns `true` if a
/// merge happened (in which case the caller should re-run the pair fixpoint).
fn closure_merge_once(ctx: &SplitContext<'_>, parts: &mut Vec<BTreeSet<usize>>) -> bool {
    let part_count = parts.len();
    for i in 0..part_count {
        for j in (i + 1)..part_count {
            for policy in [
                ClosurePolicy::PreferPredecessors,
                ClosurePolicy::PreferSuccessors,
            ] {
                if let Some(group) = closure(ctx, parts, &[i, j], policy) {
                    if group.len() >= 2 {
                        merge_parts(parts, &group);
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Grows the union of the seed parts until it is sound or provably cannot be
/// made sound by adding more parts. Returns the indices of the included
/// parts on success.
fn closure(
    ctx: &SplitContext<'_>,
    parts: &[BTreeSet<usize>],
    seed: &[usize],
    policy: ClosurePolicy,
) -> Option<BTreeSet<usize>> {
    // map from member index to its part, for quick "which part do we pull in"
    let mut part_of = vec![usize::MAX; ctx.len()];
    for (pi, part) in parts.iter().enumerate() {
        for &m in part {
            part_of[m] = pi;
        }
    }

    let mut included: BTreeSet<usize> = seed.iter().copied().collect();
    let mut union: BTreeSet<usize> = included
        .iter()
        .flat_map(|&pi| parts[pi].iter().copied())
        .collect();

    loop {
        let Some((input, output)) = ctx.first_violation(&union) else {
            return Some(included);
        };
        let (missing_preds, input_blocked) = ctx.missing_preds(input, &union);
        let (missing_succs, output_blocked) = ctx.missing_succs(output, &union);
        let can_fix_input = !input_blocked;
        let can_fix_output = !output_blocked;
        let absorb = match (can_fix_input, can_fix_output, policy) {
            (true, true, ClosurePolicy::PreferPredecessors) | (true, false, _) => missing_preds,
            (true, true, ClosurePolicy::PreferSuccessors) | (false, true, _) => missing_succs,
            (false, false, _) => return None,
        };
        debug_assert!(
            !absorb.is_empty(),
            "a boundary member always has at least one missing neighbour on its violating side"
        );
        for member in absorb {
            let pi = part_of[member];
            if included.insert(pi) {
                union.extend(parts[pi].iter().copied());
            }
        }
    }
}

/// Replaces the parts listed in `group` by their union.
fn merge_parts(parts: &mut Vec<BTreeSet<usize>>, group: &BTreeSet<usize>) {
    let mut union: BTreeSet<usize> = BTreeSet::new();
    for &pi in group {
        union.extend(parts[pi].iter().copied());
    }
    let keep: Vec<BTreeSet<usize>> = parts
        .iter()
        .enumerate()
        .filter(|(pi, _)| !group.contains(pi))
        .map(|(_, p)| p.clone())
        .collect();
    *parts = keep;
    parts.push(union);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correct::check::{is_sound_split, is_strong_local_optimal, is_weak_local_optimal};
    use crate::correct::weak::WeakCorrector;
    use wolves_workflow::WorkflowBuilder;

    /// The reconstruction of paper Figure 3: a 12-task unsound composite
    /// where the weak corrector produces 8 parts and the strong corrector 5,
    /// merging {c, d, f, g} into one sound composite although no two of
    /// them are pairwise combinable.
    fn figure3() -> (WorkflowSpec, BTreeSet<TaskId>, Vec<TaskId>) {
        let mut builder = WorkflowBuilder::new("figure3");
        let source = builder.task("source");
        let sink = builder.task("sink");
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m"];
        let tasks: Vec<TaskId> = names.iter().map(|n| builder.task(*n)).collect();
        let idx = |name: &str| tasks[names.iter().position(|&n| n == name).unwrap()];
        // four independent two-task chains: a->b, e->h, i->j, k->m
        for (x, y) in [("a", "b"), ("e", "h"), ("i", "j"), ("k", "m")] {
            builder.edge(source, idx(x)).unwrap();
            builder.edge(idx(x), idx(y)).unwrap();
            builder.edge(idx(y), sink).unwrap();
        }
        // the crossing component {c, d, f, g}: sound as a whole, but no pair
        // of its members is combinable
        builder.edge(source, idx("c")).unwrap();
        builder.edge(source, idx("f")).unwrap();
        builder.edge(idx("c"), idx("d")).unwrap();
        builder.edge(idx("c"), idx("g")).unwrap();
        builder.edge(idx("f"), idx("d")).unwrap();
        builder.edge(idx("f"), idx("g")).unwrap();
        builder.edge(idx("d"), sink).unwrap();
        builder.edge(idx("g"), sink).unwrap();
        let spec = builder.build().unwrap();
        let members: BTreeSet<TaskId> = tasks.iter().copied().collect();
        (spec, members, tasks)
    }

    #[test]
    fn figure3_weak_vs_strong_part_counts() {
        let (spec, members, _) = figure3();
        let weak = WeakCorrector::new().split(&spec, &members).unwrap();
        let strong = StrongCorrector::new().split(&spec, &members).unwrap();
        assert_eq!(
            weak.part_count(),
            8,
            "weak corrector: 4 chains merged + 4 singletons"
        );
        assert_eq!(
            strong.part_count(),
            5,
            "strong corrector additionally merges {{c,d,f,g}}"
        );
        assert!(is_sound_split(&spec, &members, &weak));
        assert!(is_sound_split(&spec, &members, &strong));
        assert!(is_weak_local_optimal(&spec, &weak));
        assert!(!is_strong_local_optimal(&spec, &weak));
        assert!(is_strong_local_optimal(&spec, &strong));
    }

    #[test]
    fn figure3_strong_merges_the_crossing_component() {
        let (spec, members, tasks) = figure3();
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m"];
        let idx = |name: &str| tasks[names.iter().position(|&n| n == name).unwrap()];
        let strong = StrongCorrector::new().split(&spec, &members).unwrap();
        let part_c = strong.part_of(idx("c")).unwrap();
        for name in ["d", "f", "g"] {
            assert!(part_c.contains(&idx(name)), "{name} must join c's part");
        }
        assert_eq!(part_c.len(), 4);
    }

    #[test]
    fn strong_equals_weak_when_no_multi_merge_exists() {
        // simple fork where weak already achieves the best local structure
        let mut b = WorkflowBuilder::new("fork");
        let s = b.task("s");
        let a = b.task("a");
        let m = b.task("b");
        let c = b.task("c");
        let t = b.task("t");
        b.edge(s, a).unwrap();
        b.edge(a, m).unwrap();
        b.edge(m, t).unwrap();
        b.edge(s, c).unwrap();
        b.edge(c, t).unwrap();
        let spec = b.build().unwrap();
        let members: BTreeSet<TaskId> = [a, m, c].into_iter().collect();
        let weak = WeakCorrector::new().split(&spec, &members).unwrap();
        let strong = StrongCorrector::new().split(&spec, &members).unwrap();
        assert_eq!(weak.part_count(), strong.part_count());
        assert!(is_strong_local_optimal(&spec, &strong));
    }

    #[test]
    fn sound_composite_stays_whole() {
        let mut b = WorkflowBuilder::new("chain");
        let s = b.task("s");
        let x = b.task("x");
        let y = b.task("y");
        let t = b.task("t");
        b.chain(&[s, x, y, t]).unwrap();
        let spec = b.build().unwrap();
        let members: BTreeSet<TaskId> = [x, y].into_iter().collect();
        let split = StrongCorrector::new().split(&spec, &members).unwrap();
        assert_eq!(split.part_count(), 1);
    }

    #[test]
    fn result_is_always_a_sound_partition() {
        let (spec, members, _) = figure3();
        let split = StrongCorrector::new().split(&spec, &members).unwrap();
        assert!(split.is_partition_of(&members));
        assert!(is_sound_split(&spec, &members, &split));
    }
}
