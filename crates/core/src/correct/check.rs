//! Verification of split properties.
//!
//! These checkers implement Definitions 2.3, 2.5 and 2.6 *literally*
//! (including the exponential subset enumeration for strong local
//! optimality). They are used by the test suite, by the property-based
//! tests, and by the quality experiment (E3) to certify the output of the
//! polynomial correctors; they are not meant for the hot path.

use std::collections::BTreeSet;

use wolves_workflow::{TaskId, WorkflowSpec};

use crate::correct::split::Split;
use crate::soundness::{are_combinable, is_sound};

/// `true` iff `split` partitions exactly `members` and every part is a sound
/// composite task.
#[must_use]
pub fn is_sound_split(spec: &WorkflowSpec, members: &BTreeSet<TaskId>, split: &Split) -> bool {
    split.is_partition_of(members) && split.parts().iter().all(|p| is_sound(spec, p))
}

/// `true` iff no two parts of the split are combinable (Definition 2.5).
#[must_use]
pub fn is_weak_local_optimal(spec: &WorkflowSpec, split: &Split) -> bool {
    let parts = split.parts();
    for i in 0..parts.len() {
        for j in (i + 1)..parts.len() {
            if are_combinable(spec, [&parts[i], &parts[j]]) {
                return false;
            }
        }
    }
    true
}

/// `true` iff no subset of two or more parts is combinable (Definition 2.6).
///
/// This enumerates all `2^k` subsets of the `k` parts and is therefore only
/// suitable for verification on modest part counts (the experiments keep
/// `k ≤ 20`). Returns `true` vacuously for splits with fewer than two parts.
#[must_use]
pub fn is_strong_local_optimal(spec: &WorkflowSpec, split: &Split) -> bool {
    find_combinable_subset(spec, split).is_none()
}

/// Finds one combinable subset of parts (two or more), if any exists, by
/// exhaustive enumeration. Returns the part indices.
#[must_use]
pub fn find_combinable_subset(spec: &WorkflowSpec, split: &Split) -> Option<Vec<usize>> {
    let parts = split.parts();
    let k = parts.len();
    assert!(
        k <= 25,
        "exhaustive strong-local-optimality check limited to 25 parts (got {k})"
    );
    if k < 2 {
        return None;
    }
    // enumerate subsets by increasing size so that the reported subset is a
    // smallest combinable one (more useful in error messages)
    let masks: u32 = 1 << k;
    let mut subsets: Vec<u32> = (0..masks).filter(|m| m.count_ones() >= 2).collect();
    subsets.sort_by_key(|m| m.count_ones());
    for mask in subsets {
        let chosen: Vec<&BTreeSet<TaskId>> = (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &parts[i])
            .collect();
        if are_combinable(spec, chosen) {
            return Some((0..k).filter(|i| mask & (1 << i) != 0).collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_workflow::WorkflowBuilder;

    /// s -> a -> b -> t,  s -> c -> t ; composite = {a, b, c}
    fn fork() -> (WorkflowSpec, BTreeSet<TaskId>, Vec<TaskId>) {
        let mut b = WorkflowBuilder::new("fork");
        let s = b.task("s");
        let a = b.task("a");
        let m = b.task("b");
        let c = b.task("c");
        let t = b.task("t");
        b.edge(s, a).unwrap();
        b.edge(a, m).unwrap();
        b.edge(m, t).unwrap();
        b.edge(s, c).unwrap();
        b.edge(c, t).unwrap();
        let spec = b.build().unwrap();
        let members: BTreeSet<TaskId> = [a, m, c].into_iter().collect();
        (spec, members, vec![s, a, m, c, t])
    }

    #[test]
    fn sound_split_requires_partition_and_soundness() {
        let (spec, members, ids) = fork();
        let good = Split::new(vec![
            [ids[1], ids[2]].into_iter().collect(),
            [ids[3]].into_iter().collect(),
        ]);
        assert!(is_sound_split(&spec, &members, &good));
        // not a partition (misses c)
        let incomplete = Split::new(vec![[ids[1], ids[2]].into_iter().collect()]);
        assert!(!is_sound_split(&spec, &members, &incomplete));
        // partition but unsound part {a, c}
        let unsound = Split::new(vec![
            [ids[1], ids[3]].into_iter().collect(),
            [ids[2]].into_iter().collect(),
        ]);
        assert!(!is_sound_split(&spec, &members, &unsound));
    }

    #[test]
    fn weak_local_optimality_detects_mergeable_pairs() {
        let (spec, _, ids) = fork();
        let singletons = Split::new(vec![
            [ids[1]].into_iter().collect(),
            [ids[2]].into_iter().collect(),
            [ids[3]].into_iter().collect(),
        ]);
        // {a} and {b} can merge, so the all-singleton split is not weakly
        // local optimal
        assert!(!is_weak_local_optimal(&spec, &singletons));
        let merged = Split::new(vec![
            [ids[1], ids[2]].into_iter().collect(),
            [ids[3]].into_iter().collect(),
        ]);
        assert!(is_weak_local_optimal(&spec, &merged));
    }

    #[test]
    fn strong_local_optimality_is_at_least_as_strict_as_weak() {
        let (spec, _, ids) = fork();
        let merged = Split::new(vec![
            [ids[1], ids[2]].into_iter().collect(),
            [ids[3]].into_iter().collect(),
        ]);
        assert!(is_weak_local_optimal(&spec, &merged));
        assert!(is_strong_local_optimal(&spec, &merged));
        let singletons = Split::new(vec![
            [ids[1]].into_iter().collect(),
            [ids[2]].into_iter().collect(),
            [ids[3]].into_iter().collect(),
        ]);
        assert!(!is_strong_local_optimal(&spec, &singletons));
        let subset = find_combinable_subset(&spec, &singletons).unwrap();
        assert_eq!(subset.len(), 2);
    }

    #[test]
    fn single_part_splits_are_trivially_optimal() {
        let (spec, _, ids) = fork();
        let one = Split::new(vec![[ids[1]].into_iter().collect()]);
        assert!(is_weak_local_optimal(&spec, &one));
        assert!(is_strong_local_optimal(&spec, &one));
    }
}
