//! The exact (optimal) corrector.
//!
//! Splitting an unsound composite task into the *minimum* number of sound
//! composite tasks is NP-hard (Theorem 2.2 of the paper), so this corrector
//! performs an exponential search: a memoized dynamic program over bit masks
//! of the member set. It refuses composites larger than a configurable limit
//! and exists to (a) measure the quality of the polynomial correctors
//! (experiment E3) and (b) demonstrate the running-time gap (experiment E4).

use std::collections::{BTreeSet, HashMap};

use wolves_workflow::{TaskId, WorkflowSpec};

use crate::correct::context::SplitContext;
use crate::correct::split::Split;
use crate::correct::strong::StrongCorrector;
use crate::correct::Corrector;
use crate::error::CoreError;

/// Exact minimum-split corrector (exponential time, NP-hard problem).
#[derive(Debug, Clone, Copy)]
pub struct OptimalCorrector {
    /// Largest composite (in atomic tasks) the corrector will attempt.
    /// Larger inputs return [`CoreError::TooLargeForOptimal`].
    pub max_tasks: usize,
}

impl Default for OptimalCorrector {
    fn default() -> Self {
        OptimalCorrector { max_tasks: 18 }
    }
}

impl OptimalCorrector {
    /// Creates a corrector with the default size limit (18 tasks).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a corrector with a custom size limit (capped at 60 so masks
    /// fit into a `u64`).
    #[must_use]
    pub fn with_limit(max_tasks: usize) -> Self {
        OptimalCorrector {
            max_tasks: max_tasks.min(60),
        }
    }
}

impl Corrector for OptimalCorrector {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn split(&self, spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> Result<Split, CoreError> {
        if members.len() > self.max_tasks {
            return Err(CoreError::TooLargeForOptimal {
                tasks: members.len(),
                limit: self.max_tasks,
            });
        }
        let ctx = SplitContext::new(spec, members);
        let n = ctx.len();
        if n == 0 {
            return Ok(Split::new(Vec::new()));
        }
        let tables = MaskTables::new(&ctx);
        // An upper bound from the polynomial strong corrector prunes the
        // search considerably on easy instances.
        let upper_bound = StrongCorrector::new()
            .split(spec, members)
            .map(|s| s.part_count())
            .unwrap_or(n);
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut solver = Solver {
            tables: &tables,
            memo: HashMap::new(),
            sound_cache: HashMap::new(),
        };
        let (_, parts) = solver.solve(full, upper_bound);
        let parts_sets: Vec<BTreeSet<usize>> = parts.into_iter().map(mask_to_set).collect();
        Ok(Split::new(ctx.to_task_sets(&parts_sets)))
    }
}

/// Dense bit-mask tables describing one composite task.
struct MaskTables {
    n: usize,
    /// Member has a predecessor outside the composite.
    ext_in: Vec<bool>,
    /// Member has a successor outside the composite.
    ext_out: Vec<bool>,
    /// Mask of within-composite direct predecessors per member.
    pred_mask: Vec<u64>,
    /// Mask of within-composite direct successors per member.
    succ_mask: Vec<u64>,
    /// Mask of members reachable (in the full workflow) from each member.
    reach_mask: Vec<u64>,
}

impl MaskTables {
    fn new(ctx: &SplitContext<'_>) -> Self {
        let n = ctx.len();
        assert!(n <= 64, "mask tables limited to 64 members");
        let mut ext_in = vec![false; n];
        let mut ext_out = vec![false; n];
        let mut pred_mask = vec![0u64; n];
        let mut succ_mask = vec![0u64; n];
        let mut reach_mask = vec![0u64; n];
        let all: BTreeSet<usize> = (0..n).collect();
        for i in 0..n {
            let singleton: BTreeSet<usize> = BTreeSet::from([i]);
            // ext flags: member is a boundary node even when the whole
            // composite is taken
            ext_in[i] = ctx.is_input(i, &all);
            ext_out[i] = ctx.is_output(i, &all);
            let (preds, _) = ctx.missing_preds(i, &singleton);
            for p in preds {
                if p != i {
                    pred_mask[i] |= 1 << p;
                }
            }
            let (succs, _) = ctx.missing_succs(i, &singleton);
            for s in succs {
                if s != i {
                    succ_mask[i] |= 1 << s;
                }
            }
            for j in 0..n {
                if ctx.reaches(i, j) {
                    reach_mask[i] |= 1 << j;
                }
            }
        }
        MaskTables {
            n,
            ext_in,
            ext_out,
            pred_mask,
            succ_mask,
            reach_mask,
        }
    }

    /// Soundness of the subset encoded by `mask`.
    fn is_sound(&self, mask: u64) -> bool {
        let outside = !mask;
        let mut out_set: u64 = 0;
        for i in 0..self.n {
            let bit = 1u64 << i;
            if mask & bit == 0 {
                continue;
            }
            if self.ext_out[i] || self.succ_mask[i] & outside != 0 {
                out_set |= bit;
            }
        }
        for i in 0..self.n {
            let bit = 1u64 << i;
            if mask & bit == 0 {
                continue;
            }
            let is_in = self.ext_in[i] || self.pred_mask[i] & outside != 0;
            if is_in && out_set & !self.reach_mask[i] != 0 {
                return false;
            }
        }
        true
    }
}

struct Solver<'a> {
    tables: &'a MaskTables,
    memo: HashMap<u64, (usize, Vec<u64>)>,
    sound_cache: HashMap<u64, bool>,
}

impl Solver<'_> {
    fn sound(&mut self, mask: u64) -> bool {
        if let Some(&s) = self.sound_cache.get(&mask) {
            return s;
        }
        let s = self.tables.is_sound(mask);
        self.sound_cache.insert(mask, s);
        s
    }

    /// Minimum number of sound parts partitioning `remaining`, bounded by
    /// `budget` (inclusive); returns `(count, parts)` where `count >
    /// budget` signals "no solution within budget" (parts then empty).
    fn solve(&mut self, remaining: u64, budget: usize) -> (usize, Vec<u64>) {
        if remaining == 0 {
            return (0, Vec::new());
        }
        if budget == 0 {
            return (usize::MAX, Vec::new());
        }
        if let Some((count, parts)) = self.memo.get(&remaining) {
            return (*count, parts.clone());
        }
        // quick win: the whole remainder is sound
        if self.sound(remaining) {
            let result = (1, vec![remaining]);
            self.memo.insert(remaining, result.clone());
            return result;
        }
        let lowest = remaining & remaining.wrapping_neg();
        let rest = remaining ^ lowest;
        let mut best_count = usize::MAX;
        let mut best_parts: Vec<u64> = Vec::new();
        // Enumerate every subset of `remaining` containing the lowest bit,
        // as the part that covers that member.
        let mut sub = rest;
        loop {
            let candidate = sub | lowest;
            if self.sound(candidate) {
                let inner_budget = best_count.saturating_sub(2).min(budget - 1);
                let (count, parts) = self.solve(remaining ^ candidate, inner_budget);
                if count != usize::MAX && count + 1 < best_count {
                    best_count = count + 1;
                    let mut all = vec![candidate];
                    all.extend(parts);
                    best_parts = all;
                    if best_count == 1 {
                        break;
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        // Only memoize exact results (unbounded-budget semantics); bounded
        // failures must not poison the cache.
        if best_count != usize::MAX {
            self.memo
                .insert(remaining, (best_count, best_parts.clone()));
            (best_count, best_parts)
        } else {
            (usize::MAX, Vec::new())
        }
    }
}

fn mask_to_set(mask: u64) -> BTreeSet<usize> {
    (0..64).filter(|&i| mask & (1 << i) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correct::check::{is_sound_split, is_strong_local_optimal};
    use crate::correct::weak::WeakCorrector;
    use wolves_workflow::WorkflowBuilder;

    #[test]
    fn optimal_matches_manual_analysis_on_figure1_composite() {
        // Composite (16) of Figure 1(b) = {Curate annotations, Create
        // alignment}: the only sound split is two singletons.
        let mut b = WorkflowBuilder::new("f1");
        let t3 = b.task("3");
        let t4 = b.task("4");
        let t5 = b.task("5");
        let t6 = b.task("6");
        let t7 = b.task("7");
        let t8 = b.task("8");
        b.edge(t3, t4).unwrap();
        b.edge(t4, t5).unwrap();
        b.edge(t6, t7).unwrap();
        b.edge(t7, t8).unwrap();
        let spec = b.build().unwrap();
        let members: BTreeSet<TaskId> = [t4, t7].into_iter().collect();
        let split = OptimalCorrector::new().split(&spec, &members).unwrap();
        assert_eq!(split.part_count(), 2);
        assert!(is_sound_split(&spec, &members, &split));
    }

    #[test]
    fn optimal_finds_the_five_part_solution_of_figure3() {
        let (spec, members) = figure3_like();
        let optimal = OptimalCorrector::new().split(&spec, &members).unwrap();
        assert_eq!(optimal.part_count(), 5);
        assert!(is_sound_split(&spec, &members, &optimal));
        assert!(is_strong_local_optimal(&spec, &optimal));
        // and it is never worse than the polynomial correctors
        let weak = WeakCorrector::new().split(&spec, &members).unwrap();
        assert!(optimal.part_count() <= weak.part_count());
    }

    #[test]
    fn size_limit_is_enforced() {
        let mut b = WorkflowBuilder::new("big");
        let source = b.task("source");
        let mut members = BTreeSet::new();
        for i in 0..25 {
            let t = b.task(format!("t{i}"));
            b.edge(source, t).unwrap();
            members.insert(t);
        }
        let spec = b.build().unwrap();
        let err = OptimalCorrector::with_limit(10)
            .split(&spec, &members)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::TooLargeForOptimal {
                tasks: 25,
                limit: 10
            }
        ));
    }

    #[test]
    fn sound_composite_is_a_single_part() {
        let mut b = WorkflowBuilder::new("chain");
        let s = b.task("s");
        let x = b.task("x");
        let y = b.task("y");
        let t = b.task("t");
        b.chain(&[s, x, y, t]).unwrap();
        let spec = b.build().unwrap();
        let members: BTreeSet<TaskId> = [x, y].into_iter().collect();
        let split = OptimalCorrector::new().split(&spec, &members).unwrap();
        assert_eq!(split.part_count(), 1);
    }

    /// Same construction as the strong corrector's Figure 3 fixture.
    fn figure3_like() -> (WorkflowSpec, BTreeSet<TaskId>) {
        let mut builder = WorkflowBuilder::new("figure3");
        let source = builder.task("source");
        let sink = builder.task("sink");
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m"];
        let tasks: Vec<TaskId> = names.iter().map(|n| builder.task(*n)).collect();
        let idx = |name: &str| tasks[names.iter().position(|&n| n == name).unwrap()];
        for (x, y) in [("a", "b"), ("e", "h"), ("i", "j"), ("k", "m")] {
            builder.edge(source, idx(x)).unwrap();
            builder.edge(idx(x), idx(y)).unwrap();
            builder.edge(idx(y), sink).unwrap();
        }
        builder.edge(source, idx("c")).unwrap();
        builder.edge(source, idx("f")).unwrap();
        builder.edge(idx("c"), idx("d")).unwrap();
        builder.edge(idx("c"), idx("g")).unwrap();
        builder.edge(idx("f"), idx("d")).unwrap();
        builder.edge(idx("f"), idx("g")).unwrap();
        builder.edge(idx("d"), sink).unwrap();
        builder.edge(idx("g"), sink).unwrap();
        let spec = builder.build().unwrap();
        let members: BTreeSet<TaskId> = tasks.iter().copied().collect();
        (spec, members)
    }
}
