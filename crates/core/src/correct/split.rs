//! The result of splitting one unsound composite task.

use std::collections::BTreeSet;

use wolves_workflow::TaskId;

/// A split of a composite task into smaller groups of atomic tasks.
///
/// Produced by the correctors; each part is intended to become a new,
/// sound composite task of the corrected view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    parts: Vec<BTreeSet<TaskId>>,
}

impl Split {
    /// Creates a split from parts, dropping empty parts and ordering the
    /// parts deterministically (by their smallest member).
    #[must_use]
    pub fn new(mut parts: Vec<BTreeSet<TaskId>>) -> Self {
        parts.retain(|p| !p.is_empty());
        parts.sort_by_key(|p| p.iter().next().copied());
        Split { parts }
    }

    /// The finest split: every task in its own part.
    #[must_use]
    pub fn singletons(members: &BTreeSet<TaskId>) -> Self {
        Split::new(members.iter().map(|&t| BTreeSet::from([t])).collect())
    }

    /// Number of parts.
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// The parts, ordered by smallest member id.
    #[must_use]
    pub fn parts(&self) -> &[BTreeSet<TaskId>] {
        &self.parts
    }

    /// Total number of atomic tasks covered by the split.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.parts.iter().map(BTreeSet::len).sum()
    }

    /// Returns the part containing `task`, if any.
    #[must_use]
    pub fn part_of(&self, task: TaskId) -> Option<&BTreeSet<TaskId>> {
        self.parts.iter().find(|p| p.contains(&task))
    }

    /// `true` iff the split is a partition of exactly the given member set.
    #[must_use]
    pub fn is_partition_of(&self, members: &BTreeSet<TaskId>) -> bool {
        let mut seen: BTreeSet<TaskId> = BTreeSet::new();
        for part in &self.parts {
            for &t in part {
                if !members.contains(&t) || !seen.insert(t) {
                    return false;
                }
            }
        }
        seen.len() == members.len()
    }

    /// Converts the split into the `Vec<Vec<TaskId>>` shape expected by
    /// [`wolves_workflow::WorkflowView::split_composite`].
    #[must_use]
    pub fn to_groups(&self) -> Vec<Vec<TaskId>> {
        self.parts
            .iter()
            .map(|p| p.iter().copied().collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: usize) -> TaskId {
        TaskId::from_index(i)
    }

    #[test]
    fn construction_drops_empty_and_orders_parts() {
        let split = Split::new(vec![
            BTreeSet::from([tid(5), tid(6)]),
            BTreeSet::new(),
            BTreeSet::from([tid(1)]),
        ]);
        assert_eq!(split.part_count(), 2);
        assert_eq!(split.parts()[0], BTreeSet::from([tid(1)]));
        assert_eq!(split.task_count(), 3);
    }

    #[test]
    fn singleton_split_covers_all_members() {
        let members: BTreeSet<TaskId> = [tid(0), tid(3), tid(9)].into_iter().collect();
        let split = Split::singletons(&members);
        assert_eq!(split.part_count(), 3);
        assert!(split.is_partition_of(&members));
        assert!(split.part_of(tid(3)).is_some());
        assert!(split.part_of(tid(4)).is_none());
    }

    #[test]
    fn partition_check_detects_leaks_and_overlaps() {
        let members: BTreeSet<TaskId> = [tid(0), tid(1)].into_iter().collect();
        let leak = Split::new(vec![
            BTreeSet::from([tid(0), tid(2)]),
            BTreeSet::from([tid(1)]),
        ]);
        assert!(!leak.is_partition_of(&members));
        let overlap = Split::new(vec![
            BTreeSet::from([tid(0), tid(1)]),
            BTreeSet::from([tid(1)]),
        ]);
        assert!(!overlap.is_partition_of(&members));
        let incomplete = Split::new(vec![BTreeSet::from([tid(0)])]);
        assert!(!incomplete.is_partition_of(&members));
        let good = Split::new(vec![BTreeSet::from([tid(0)]), BTreeSet::from([tid(1)])]);
        assert!(good.is_partition_of(&members));
    }

    #[test]
    fn to_groups_matches_parts() {
        let split = Split::new(vec![
            BTreeSet::from([tid(2), tid(3)]),
            BTreeSet::from([tid(7)]),
        ]);
        let groups = split.to_groups();
        assert_eq!(groups, vec![vec![tid(2), tid(3)], vec![tid(7)]]);
    }
}
