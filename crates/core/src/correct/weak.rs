//! The weakly local optimal corrector (Definition 2.5).
//!
//! A split is *weak local optimal* when no two of its parts are combinable.
//! The corrector starts from the finest split (every atomic task in its own
//! part — always sound) and greedily merges combinable pairs until no pair
//! can be merged, which establishes the property by construction.

use std::collections::BTreeSet;

use wolves_workflow::{TaskId, WorkflowSpec};

use crate::correct::context::SplitContext;
use crate::correct::split::Split;
use crate::correct::Corrector;
use crate::error::CoreError;

/// Polynomial-time corrector guaranteeing weak local optimality.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeakCorrector;

impl WeakCorrector {
    /// Creates the corrector.
    #[must_use]
    pub fn new() -> Self {
        WeakCorrector
    }
}

impl Corrector for WeakCorrector {
    fn name(&self) -> &'static str {
        "weak-local-optimal"
    }

    fn split(&self, spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> Result<Split, CoreError> {
        let ctx = SplitContext::new(spec, members);
        let mut parts: Vec<BTreeSet<usize>> = (0..ctx.len()).map(|i| BTreeSet::from([i])).collect();
        merge_pairs_until_fixpoint(&ctx, &mut parts);
        Ok(Split::new(ctx.to_task_sets(&parts)))
    }
}

/// Repeatedly merges any combinable pair of parts until no pair is
/// combinable. Returns `true` if at least one merge happened.
///
/// Shared by the weak and strong correctors.
pub(crate) fn merge_pairs_until_fixpoint(
    ctx: &SplitContext<'_>,
    parts: &mut Vec<BTreeSet<usize>>,
) -> bool {
    let mut merged_any = false;
    loop {
        let mut merged_this_round = false;
        'scan: for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let mut union = parts[i].clone();
                union.extend(parts[j].iter().copied());
                if ctx.is_sound_subset(&union) {
                    parts[i] = union;
                    parts.swap_remove(j);
                    merged_this_round = true;
                    merged_any = true;
                    break 'scan;
                }
            }
        }
        if !merged_this_round {
            return merged_any;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correct::check::{is_sound_split, is_weak_local_optimal};
    use wolves_workflow::WorkflowBuilder;

    /// Composite {a, b, c} over  s -> a -> b -> t,  s -> c -> t.
    fn fork() -> (WorkflowSpec, BTreeSet<TaskId>) {
        let mut b = WorkflowBuilder::new("fork");
        let s = b.task("s");
        let a = b.task("a");
        let m = b.task("b");
        let c = b.task("c");
        let t = b.task("t");
        b.edge(s, a).unwrap();
        b.edge(a, m).unwrap();
        b.edge(m, t).unwrap();
        b.edge(s, c).unwrap();
        b.edge(c, t).unwrap();
        let spec = b.build().unwrap();
        let members = [a, m, c].into_iter().collect();
        (spec, members)
    }

    #[test]
    fn weak_corrector_merges_what_it_can() {
        let (spec, members) = fork();
        let split = WeakCorrector::new().split(&spec, &members).unwrap();
        // {a, b} merge into one sound part; c stays alone
        assert_eq!(split.part_count(), 2);
        assert!(is_sound_split(&spec, &members, &split));
        assert!(is_weak_local_optimal(&spec, &split));
    }

    #[test]
    fn sound_composite_collapses_to_one_part() {
        let mut b = WorkflowBuilder::new("chain");
        let s = b.task("s");
        let x = b.task("x");
        let y = b.task("y");
        let z = b.task("z");
        let t = b.task("t");
        b.chain(&[s, x, y, z, t]).unwrap();
        let spec = b.build().unwrap();
        let members: BTreeSet<TaskId> = [x, y, z].into_iter().collect();
        let split = WeakCorrector::new().split(&spec, &members).unwrap();
        assert_eq!(split.part_count(), 1);
        assert!(is_sound_split(&spec, &members, &split));
    }

    #[test]
    fn singleton_composite_is_returned_unchanged() {
        let (spec, members) = fork();
        let single: BTreeSet<TaskId> = [*members.iter().next().unwrap()].into_iter().collect();
        let split = WeakCorrector::new().split(&spec, &single).unwrap();
        assert_eq!(split.part_count(), 1);
        assert!(split.is_partition_of(&single));
    }

    #[test]
    fn result_is_always_a_partition() {
        let (spec, members) = fork();
        let split = WeakCorrector::new().split(&spec, &members).unwrap();
        assert!(split.is_partition_of(&members));
    }
}
