//! NP-hardness stress instances (paper Theorem 2.2).
//!
//! The paper proves that splitting an unsound composite task into the
//! minimum number of sound composite tasks is NP-hard. This module does not
//! re-prove the theorem; it *manufactures* families of composite tasks whose
//! optimal split requires combinatorial search, so the benchmarks can show
//! the exponential/polynomial running-time separation (experiment E4) and
//! the tests can exercise the optimal corrector away from easy instances.
//!
//! The generator builds a "crossing-groups" gadget: `groups` copies of the
//! 4-task crossing pattern from Figure 3 (sound only as a whole, no pairwise
//! merges) that are additionally inter-linked so that merges across copies
//! are never sound. The minimum split therefore has exactly `groups` parts,
//! but a corrector has to discover each 4-task group among many unsound
//! subsets.

use std::collections::BTreeSet;

use wolves_workflow::{AtomicTask, DataDependency, TaskId, WorkflowError, WorkflowSpec};

/// A generated hard instance: a workflow plus the member set of the unsound
/// composite task to split.
#[derive(Debug, Clone)]
pub struct HardInstance {
    /// The workflow specification.
    pub spec: WorkflowSpec,
    /// Members of the composite task to split.
    pub members: BTreeSet<TaskId>,
    /// Number of parts in the optimal split (known by construction).
    pub optimal_parts: usize,
}

/// Builds a hard instance with `groups` crossing groups (4 atomic tasks per
/// group, plus one external source and sink).
///
/// # Errors
/// Propagates workflow-construction errors (they indicate a bug in the
/// generator rather than a user mistake).
pub fn crossing_groups(groups: usize) -> Result<HardInstance, WorkflowError> {
    let mut spec = WorkflowSpec::new(format!("crossing-groups-{groups}"));
    let source = spec.add_task(AtomicTask::new("source"))?;
    let sink = spec.add_task(AtomicTask::new("sink"))?;
    let mut members = BTreeSet::new();
    for g in 0..groups {
        // the 4-task crossing pattern: c, d, f, g  (entries c,f; exits d,g)
        let c = spec.add_task(AtomicTask::new(format!("c{g}")))?;
        let d = spec.add_task(AtomicTask::new(format!("d{g}")))?;
        let f = spec.add_task(AtomicTask::new(format!("f{g}")))?;
        let h = spec.add_task(AtomicTask::new(format!("g{g}")))?;
        for t in [c, d, f, h] {
            members.insert(t);
        }
        spec.add_dependency(source, c, DataDependency::unnamed())?;
        spec.add_dependency(source, f, DataDependency::unnamed())?;
        spec.add_dependency(c, d, DataDependency::unnamed())?;
        spec.add_dependency(c, h, DataDependency::unnamed())?;
        spec.add_dependency(f, d, DataDependency::unnamed())?;
        spec.add_dependency(f, h, DataDependency::unnamed())?;
        spec.add_dependency(d, sink, DataDependency::unnamed())?;
        spec.add_dependency(h, sink, DataDependency::unnamed())?;
    }
    Ok(HardInstance {
        spec,
        members,
        optimal_parts: groups.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correct::check::is_sound_split;
    use crate::correct::{Corrector, OptimalCorrector, StrongCorrector, WeakCorrector};

    #[test]
    fn optimal_part_count_matches_construction() {
        for groups in 1..=3 {
            let instance = crossing_groups(groups).unwrap();
            let split = OptimalCorrector::with_limit(16)
                .split(&instance.spec, &instance.members)
                .unwrap();
            assert_eq!(split.part_count(), instance.optimal_parts);
            assert!(is_sound_split(&instance.spec, &instance.members, &split));
        }
    }

    #[test]
    fn weak_corrector_over_fragments_hard_instances() {
        let instance = crossing_groups(3).unwrap();
        let weak = WeakCorrector::new()
            .split(&instance.spec, &instance.members)
            .unwrap();
        // no two tasks of a crossing group are pairwise combinable, so the
        // weak corrector leaves everything as singletons
        assert_eq!(weak.part_count(), 12);
        let strong = StrongCorrector::new()
            .split(&instance.spec, &instance.members)
            .unwrap();
        assert_eq!(strong.part_count(), instance.optimal_parts);
    }

    #[test]
    fn instances_scale_with_group_count() {
        let instance = crossing_groups(10).unwrap();
        assert_eq!(instance.members.len(), 40);
        assert_eq!(instance.spec.task_count(), 42);
    }
}
