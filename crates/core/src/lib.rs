//! # wolves-core
//!
//! Soundness theory and view-correction algorithms of the WOLVES system
//! ("WOLVES: Achieving Correct Provenance Analysis by Detecting and Resolving
//! Unsound Workflow Views", Sun et al., VLDB 2009).
//!
//! The crate provides the two central modules of the paper's architecture
//! (Figure 2):
//!
//! * **Workflow View Validator** ([`mod@validate`]) — detects unsound views in
//!   polynomial time using the per-composite-task criterion of
//!   Proposition 2.1, with slower definition-based checks for comparison.
//! * **Unsound View Corrector** ([`correct`]) — repairs unsound composite
//!   tasks by splitting them, with three interchangeable correctors: weakly
//!   local optimal, strongly local optimal (both polynomial) and optimal
//!   (exact, exponential — the underlying problem is NP-hard, Theorem 2.2).
//!
//! Supporting modules implement the quality metric ([`quality`]), the
//! correction-time estimator of the demo GUI ([`estimate`]), the interactive
//! feedback loop ([`feedback`]) and generators of provably hard instances
//! ([`hardness`]).
//!
//! ```
//! use wolves_core::correct::{correct_view, Strategy};
//! use wolves_core::validate::validate;
//! use wolves_workflow::{builder::ViewBuilder, WorkflowBuilder};
//!
//! // s -> a -> b -> t,  s -> c -> t : grouping {a, c} is unsound
//! let mut b = WorkflowBuilder::new("toy");
//! let s = b.task("s");
//! let a = b.task("a");
//! let x = b.task("b");
//! let c = b.task("c");
//! let t = b.task("t");
//! b.edge(s, a).unwrap();
//! b.edge(a, x).unwrap();
//! b.edge(x, t).unwrap();
//! b.edge(s, c).unwrap();
//! b.edge(c, t).unwrap();
//! let spec = b.build().unwrap();
//! let view = ViewBuilder::new(&spec, "bad")
//!     .group("grouped", vec![a, c])
//!     .singletons_for_rest()
//!     .build()
//!     .unwrap();
//!
//! assert!(!validate(&spec, &view).is_sound());
//! let corrector = Strategy::Strong.corrector();
//! let (fixed, report) = correct_view(&spec, &view, corrector.as_ref()).unwrap();
//! assert!(validate(&spec, &fixed).is_sound());
//! assert_eq!(report.corrections.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod correct;
pub mod error;
pub mod estimate;
pub mod feedback;
pub mod hardness;
pub mod quality;
pub mod soundness;
pub mod validate;

pub use correct::{
    correct_view, Corrector, OptimalCorrector, Split, Strategy, StrongCorrector, WeakCorrector,
};
pub use error::CoreError;
pub use soundness::{is_sound, soundness_verdict, UnsoundnessWitness};
pub use validate::{
    validate, validate_by_definition, validate_by_definition_incremental, DefinitionIndex,
    ValidationReport,
};
