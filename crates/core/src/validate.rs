//! The Workflow View Validator (paper §2.1).
//!
//! Three checks are implemented:
//!
//! * [`validate`] — the efficient check of Proposition 2.1: a view is sound
//!   if every composite task is sound, which only requires examining each
//!   composite's `T.in × T.out` pairs against the workflow reachability
//!   matrix.
//! * [`validate_by_definition`] — Definition 2.1 applied with polynomial
//!   machinery: compare view-level reachability with the existence of
//!   workflow-level paths between members of composite pairs.
//! * [`validate_naive`] — Definition 2.1 applied literally by enumerating
//!   simple paths (exponential in the worst case); only used by experiment
//!   E5 to illustrate why the paper's per-composite check matters.
//!
//! Note on Proposition 2.1: composite-level soundness *implies*
//! definition-level soundness (every view path is backed by a workflow path),
//! so [`validate`] never accepts a view that [`validate_by_definition`]
//! rejects. The converse can fail on contrived views (a composite may be
//! unsound while every view-level dependency happens to be realised through
//! other paths); the property-based tests pin down exactly this relationship.

use wolves_graph::{DirtyRows, FixedBitSet, ReachMatrix};
use wolves_workflow::{CompositeTaskId, InducedViewGraph, TaskId, WorkflowSpec, WorkflowView};

use crate::soundness::{soundness_verdict, SoundnessVerdict};

/// Soundness verdict for one composite task of a view.
#[derive(Debug, Clone)]
pub struct CompositeReport {
    /// The composite task.
    pub composite: CompositeTaskId,
    /// Name of the composite task.
    pub name: String,
    /// The detailed soundness verdict (boundary + witnesses).
    pub verdict: SoundnessVerdict,
}

/// Result of validating a view with the per-composite check
/// (Proposition 2.1).
#[derive(Debug, Clone)]
pub struct ValidationReport {
    per_composite: Vec<CompositeReport>,
}

impl ValidationReport {
    /// `true` iff every composite task is sound.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.per_composite.iter().all(|c| c.verdict.is_sound())
    }

    /// The ids of the unsound composite tasks, in view order.
    #[must_use]
    pub fn unsound_composites(&self) -> Vec<CompositeTaskId> {
        self.per_composite
            .iter()
            .filter(|c| !c.verdict.is_sound())
            .map(|c| c.composite)
            .collect()
    }

    /// Per-composite reports (sound and unsound alike).
    #[must_use]
    pub fn reports(&self) -> &[CompositeReport] {
        &self.per_composite
    }

    /// Number of composite tasks examined.
    #[must_use]
    pub fn composite_count(&self) -> usize {
        self.per_composite.len()
    }
}

/// Validates a view using Proposition 2.1: check each composite task's
/// soundness (Definition 2.3) against the workflow reachability matrix.
#[must_use]
pub fn validate(spec: &WorkflowSpec, view: &WorkflowView) -> ValidationReport {
    let per_composite = view
        .composites()
        .map(|(id, composite)| CompositeReport {
            composite: id,
            name: composite.name.clone(),
            verdict: soundness_verdict(spec, composite.members()),
        })
        .collect();
    ValidationReport { per_composite }
}

/// A pair of composite tasks whose view-level and workflow-level
/// connectivity disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DependencyMismatch {
    /// Source composite task.
    pub from: CompositeTaskId,
    /// Target composite task.
    pub to: CompositeTaskId,
}

/// Result of checking Definition 2.1 directly.
#[derive(Debug, Clone)]
pub struct DefinitionReport {
    /// Composite pairs connected in the view but not in the workflow —
    /// *spurious* dependencies that would mislead provenance analysis
    /// (e.g. composite 14 → 18 in the paper's Figure 1).
    pub spurious: Vec<DependencyMismatch>,
    /// Composite pairs connected in the workflow but not in the view —
    /// *missing* dependencies. These cannot occur for views that preserve
    /// all inter-composite edges, but imported views are checked anyway.
    pub missing: Vec<DependencyMismatch>,
}

impl DefinitionReport {
    /// `true` iff view-level and workflow-level connectivity agree exactly.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.spurious.is_empty() && self.missing.is_empty()
    }
}

/// Validates a view against Definition 2.1 using polynomial reachability
/// computations: there must be a view-level path between two composite tasks
/// iff some pair of their members is connected in the workflow.
///
/// Workflow-level connectivity between composites is derived with bitset
/// algebra over the reachability matrix's component rows instead of a
/// quadratic task-pair loop: each composite gets a *member mask* (the SCC
/// components its members occupy) and a *reach row* (the OR of its members'
/// reachability rows), and `connected(a, b)` is one word-level
/// mask-intersection `reach(a) ∩ mask(b) ≠ ∅`. Since a view partitions the
/// tasks, any member of `a` whose reachable set touches a component holding
/// a member of `b ≠ a` witnesses a workflow path between *distinct* tasks,
/// so this is exactly the pairwise ∃-path check — in
/// O(members · V/64 + composites² · V/64) word operations (mask building
/// plus one stride-wide intersection per ordered composite pair).
///
/// For repeated checks against a mutating spec, build a [`DefinitionIndex`]
/// once and [`DefinitionIndex::refresh`] it with the spec's dirty rows — the
/// index re-derives masks, rows and pair verdicts only for composites an
/// edit could have changed.
#[must_use]
pub fn validate_by_definition(spec: &WorkflowSpec, view: &WorkflowView) -> DefinitionReport {
    DefinitionIndex::new(spec, view).report(spec, view)
}

/// Incremental flavour of [`validate_by_definition`]: refreshes `index`
/// against the spec's dirty rows and returns the merged report (unchanged
/// composite pairs keep their previous workflow-connectivity verdict).
#[must_use]
pub fn validate_by_definition_incremental(
    spec: &WorkflowSpec,
    view: &WorkflowView,
    dirty: &DirtyRows,
    index: &mut DefinitionIndex,
) -> DefinitionReport {
    index.refresh(spec, view, dirty)
}

/// Reusable state of the definition-level check: per-composite member masks
/// and unioned reach rows (flat row-major word buffers over component
/// indices) plus the derived workflow-level connectivity matrix.
///
/// The masks/rows are the expensive part at scale (O(members · V/64) to
/// build); the index keeps them across spec mutations and re-derives only
/// the composites whose member components appear in the [`DirtyRows`] set a
/// mutation reported — including [`wolves_graph::DeltaClass::Decremental`]
/// deltas, whose splits can move members to *new* component indices, so a
/// touched slot re-derives its member mask along with its reach row and its
/// pair verdicts are refreshed in both directions.
///
/// The view-level side is incremental too: each composite's member set
/// carries a fingerprint, and membership-only view edits re-derive exactly
/// the slots whose fingerprint changed instead of rebuilding the index. The
/// induced view graph and its reachability matrix are cached under an
/// induced-edge fingerprint, so a refresh whose edit did not change the
/// view-level structure skips that rebuild entirely.
#[derive(Debug, Clone)]
pub struct DefinitionIndex {
    /// The view's composites at build time, with a fingerprint of each
    /// member set — membership-only view edits (e.g. `remove_member`) are
    /// detected per slot and re-derive just that slot.
    composites: Vec<(CompositeTaskId, u64)>,
    stride: usize,
    masks: Vec<u64>,
    rows: Vec<u64>,
    /// `in_workflow[a * n + b]`: some member of composite slot `a` reaches a
    /// member of slot `b` in the workflow.
    in_workflow: Vec<bool>,
    /// Cached view-level structure (induced graph + its closure), keyed by
    /// [`induced_fingerprint`]. `None` until the first cached report.
    view_side: Option<ViewSideCache>,
}

/// Cached view-level structure of a [`DefinitionIndex`]: the induced
/// composite graph and its reachability closure, keyed by a fingerprint of
/// the induced edge set so any spec or view edit that changes the view-level
/// structure invalidates it.
#[derive(Debug, Clone)]
struct ViewSideCache {
    fingerprint: u64,
    induced: InducedViewGraph,
    reach: ReachMatrix,
}

/// SplitMix64 finaliser — used to hash structural fingerprints below.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-independent fingerprint of the view-level structure: the composite
/// id list plus the deduplicated set of induced cross-composite edges
/// (slot pairs). O(composites + dependencies) with one n²-bit scratch set.
fn induced_fingerprint(
    spec: &WorkflowSpec,
    view: &WorkflowView,
    composites: &[(CompositeTaskId, u64)],
) -> u64 {
    let n = composites.len();
    let slot_of: std::collections::BTreeMap<CompositeTaskId, usize> = composites
        .iter()
        .enumerate()
        .map(|(slot, &(id, _))| (id, slot))
        .collect();
    let mut hash = splitmix64(n as u64);
    for (slot, &(id, _)) in composites.iter().enumerate() {
        hash ^= splitmix64(0x5EED ^ ((slot as u64) << 32) ^ id.index() as u64);
    }
    let mut seen = FixedBitSet::with_capacity(n * n);
    for (from, to) in spec.dependencies() {
        let (Some(cf), Some(ct)) = (view.composite_of(from), view.composite_of(to)) else {
            continue;
        };
        if cf == ct {
            continue;
        }
        let (Some(&sa), Some(&sb)) = (slot_of.get(&cf), slot_of.get(&ct)) else {
            continue;
        };
        if seen.insert(sa * n + sb) {
            hash ^= splitmix64((sa * n + sb) as u64);
        }
    }
    hash
}

/// FNV-1a over the member task indices: cheap detection of membership-only
/// view edits between refreshes.
fn member_fingerprint(view: &WorkflowView, composite: CompositeTaskId) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    if let Ok(composite) = view.composite(composite) {
        for &task in composite.members() {
            hash ^= task.index() as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// The view's live composites with their member fingerprints.
fn fingerprinted_composites(view: &WorkflowView) -> Vec<(CompositeTaskId, u64)> {
    view.composite_ids()
        .map(|id| (id, member_fingerprint(view, id)))
        .collect()
}

impl DefinitionIndex {
    /// Builds the index from scratch for `(spec, view)`.
    #[must_use]
    pub fn new(spec: &WorkflowSpec, view: &WorkflowView) -> Self {
        let workflow_reach = spec.reachability();
        let composites = fingerprinted_composites(view);
        let stride = workflow_reach.row_stride();
        let mut index = DefinitionIndex {
            composites,
            stride,
            masks: Vec::new(),
            rows: Vec::new(),
            in_workflow: Vec::new(),
            view_side: None,
        };
        index.masks = vec![0u64; index.composites.len() * stride];
        index.rows = vec![0u64; index.composites.len() * stride];
        for slot in 0..index.composites.len() {
            index.derive_slot(spec, view, slot);
        }
        index.in_workflow = vec![false; index.composites.len() * index.composites.len()];
        for a in 0..index.composites.len() {
            index.derive_pairs_of(a);
        }
        index
    }

    /// Refreshes the index after spec mutations whose accumulated dirty rows
    /// are `dirty` (typically `spec.take_dirty()`), then reports. Structural
    /// dirt, a change to the view's composite *id* set or a changed row
    /// stride fall back to a full rebuild; otherwise exactly the composites
    /// holding a member in a dirty component — or whose membership
    /// fingerprint changed under a view edit — get their mask, row and pair
    /// verdicts (both directions) re-derived.
    pub fn refresh(
        &mut self,
        spec: &WorkflowSpec,
        view: &WorkflowView,
        dirty: &DirtyRows,
    ) -> DefinitionReport {
        let workflow_reach = spec.reachability();
        let fresh = fingerprinted_composites(view);
        let ids_changed = fresh.len() != self.composites.len()
            || fresh
                .iter()
                .zip(&self.composites)
                .any(|(new, old)| new.0 != old.0);
        if dirty.is_all() || ids_changed || workflow_reach.row_stride() != self.stride {
            *self = DefinitionIndex::new(spec, view);
        } else {
            let mut touched_slots = Vec::new();
            for (slot, fresh_entry) in fresh.iter().enumerate() {
                let membership_changed = fresh_entry.1 != self.composites[slot].1;
                let touched = membership_changed
                    || (!dirty.is_clean()
                        && view.composite(self.composites[slot].0).is_ok_and(|c| {
                            c.members().iter().any(|&task| {
                                workflow_reach
                                    .component_of(task)
                                    .map_or(true, |comp| dirty.contains(comp))
                            })
                        }));
                if touched {
                    // decremental splits can move members to new component
                    // indices, so the mask is re-derived along with the row
                    self.masks[slot * self.stride..(slot + 1) * self.stride].fill(0);
                    self.rows[slot * self.stride..(slot + 1) * self.stride].fill(0);
                    self.derive_slot(spec, view, slot);
                    self.composites[slot].1 = fresh_entry.1;
                    touched_slots.push(slot);
                }
            }
            for &slot in &touched_slots {
                self.derive_pairs_of(slot);
            }
            if !touched_slots.is_empty() {
                // a changed mask also flips verdicts where the touched slot
                // is the *target*; untouched sources re-test those pairs
                let n = self.composites.len();
                for a in 0..n {
                    if touched_slots.contains(&a) {
                        continue;
                    }
                    let row_a = &self.rows[a * self.stride..(a + 1) * self.stride];
                    for &b in &touched_slots {
                        if a == b {
                            continue;
                        }
                        let mask_b = &self.masks[b * self.stride..(b + 1) * self.stride];
                        self.in_workflow[a * n + b] = wolves_graph::kernels::and_any(row_a, mask_b);
                    }
                }
            }
        }
        self.refresh_view_side(spec, view);
        self.report(spec, view)
    }

    /// Combines the cached workflow-level connectivity with the view-level
    /// reachability into a [`DefinitionReport`]. The view side (induced
    /// graph + closure) is taken from the fingerprint-keyed cache when it is
    /// current and recomputed on the fly otherwise — this method never
    /// mutates the index, so ad-hoc callers can hold `&self`.
    #[must_use]
    pub fn report(&self, spec: &WorkflowSpec, view: &WorkflowView) -> DefinitionReport {
        let fingerprint = induced_fingerprint(spec, view, &self.composites);
        let fallback;
        let (induced, view_reach) = match self
            .view_side
            .as_ref()
            .filter(|cache| cache.fingerprint == fingerprint)
        {
            Some(cache) => (&cache.induced, &cache.reach),
            None => {
                let induced = view.induced_graph(spec);
                let reach =
                    ReachMatrix::build_from_csr(&wolves_graph::Csr::from_graph(&induced.graph));
                fallback = (induced, reach);
                (&fallback.0, &fallback.1)
            }
        };
        let n = self.composites.len();
        let mut spurious = Vec::new();
        let mut missing = Vec::new();
        // hoist the per-composite induced-node lookups out of the n² pair
        // loop: node_of is a map lookup, and 2·n² of them dominate the scan
        let induced_nodes: Vec<_> = self
            .composites
            .iter()
            .map(|&(id, _)| induced.node_of(id))
            .collect();
        for (sa, &(a, _)) in self.composites.iter().enumerate() {
            for (sb, &(b, _)) in self.composites.iter().enumerate() {
                if sa == sb {
                    continue;
                }
                let in_view = match (induced_nodes[sa], induced_nodes[sb]) {
                    (Some(na), Some(nb)) => view_reach.reachable(na, nb),
                    _ => false,
                };
                let in_workflow = self.in_workflow[sa * n + sb];
                match (in_view, in_workflow) {
                    (true, false) => spurious.push(DependencyMismatch { from: a, to: b }),
                    (false, true) => missing.push(DependencyMismatch { from: a, to: b }),
                    _ => {}
                }
            }
        }
        DefinitionReport { spurious, missing }
    }

    /// Rebuilds the view-side cache iff the induced-edge fingerprint moved;
    /// an edit that left the view-level structure alone skips the induced
    /// graph and closure rebuild entirely.
    fn refresh_view_side(&mut self, spec: &WorkflowSpec, view: &WorkflowView) {
        let fingerprint = induced_fingerprint(spec, view, &self.composites);
        if self
            .view_side
            .as_ref()
            .is_some_and(|cache| cache.fingerprint == fingerprint)
        {
            return;
        }
        let induced = view.induced_graph(spec);
        let reach = ReachMatrix::build_from_csr(&wolves_graph::Csr::from_graph(&induced.graph));
        self.view_side = Some(ViewSideCache {
            fingerprint,
            induced,
            reach,
        });
    }

    /// (Re)derives the member mask and unioned reach row of one slot.
    fn derive_slot(&mut self, spec: &WorkflowSpec, view: &WorkflowView, slot: usize) {
        let workflow_reach = spec.reachability();
        let Ok(composite) = view.composite(self.composites[slot].0) else {
            return;
        };
        let mask = &mut self.masks[slot * self.stride..(slot + 1) * self.stride];
        for &task in composite.members() {
            if let Some(comp) = workflow_reach.component_of(task) {
                mask[comp / 64] |= 1u64 << (comp % 64);
            }
        }
        let row = &mut self.rows[slot * self.stride..(slot + 1) * self.stride];
        for &task in composite.members() {
            if let Some(reach_row) = workflow_reach.reachable_row(task) {
                wolves_graph::kernels::or_into(row, reach_row.words());
            }
        }
    }

    /// Recomputes `in_workflow` for every ordered pair with `a` as the
    /// source. Pairs with `a` as the *target* are handled by the refresh
    /// loop when `a`'s mask changed.
    fn derive_pairs_of(&mut self, a: usize) {
        let n = self.composites.len();
        let row_a = &self.rows[a * self.stride..(a + 1) * self.stride];
        for b in 0..n {
            if a == b {
                continue;
            }
            let mask_b = &self.masks[b * self.stride..(b + 1) * self.stride];
            self.in_workflow[a * n + b] = wolves_graph::kernels::and_any(row_a, mask_b);
        }
    }
}

/// Validates a view against Definition 2.1 by literally enumerating simple
/// paths (no transitive-closure data structures). Exponential in the worst
/// case; refuse large inputs with `None`.
///
/// `max_nodes` bounds the size of graphs this is willing to touch.
#[must_use]
pub fn validate_naive(
    spec: &WorkflowSpec,
    view: &WorkflowView,
    max_nodes: usize,
) -> Option<DefinitionReport> {
    if spec.task_count() > max_nodes {
        return None;
    }
    let induced = view.induced_graph(spec);
    let composites: Vec<CompositeTaskId> = view.composite_ids().collect();

    let mut spurious = Vec::new();
    let mut missing = Vec::new();
    for &a in &composites {
        for &b in &composites {
            if a == b {
                continue;
            }
            let in_view = match (induced.node_of(a), induced.node_of(b)) {
                (Some(na), Some(nb)) => path_exists_by_enumeration(&induced.graph, na, nb),
                _ => false,
            };
            let members_a: Vec<TaskId> = view
                .composite(a)
                .map(|c| c.members().iter().copied().collect())
                .unwrap_or_default();
            let members_b: Vec<TaskId> = view
                .composite(b)
                .map(|c| c.members().iter().copied().collect())
                .unwrap_or_default();
            let in_workflow = members_a.iter().any(|&t1| {
                members_b
                    .iter()
                    .any(|&t2| path_exists_by_enumeration(spec.graph(), t1, t2))
            });
            match (in_view, in_workflow) {
                (true, false) => spurious.push(DependencyMismatch { from: a, to: b }),
                (false, true) => missing.push(DependencyMismatch { from: a, to: b }),
                _ => {}
            }
        }
    }
    Some(DefinitionReport { spurious, missing })
}

/// Naive DFS path enumeration without memoisation — deliberately the
/// textbook-exponential procedure the paper warns about.
fn path_exists_by_enumeration<N, E>(
    graph: &wolves_graph::DiGraph<N, E>,
    from: wolves_graph::NodeId,
    to: wolves_graph::NodeId,
) -> bool {
    fn dfs<N, E>(
        graph: &wolves_graph::DiGraph<N, E>,
        current: wolves_graph::NodeId,
        to: wolves_graph::NodeId,
        on_path: &mut Vec<wolves_graph::NodeId>,
    ) -> bool {
        if current == to {
            return true;
        }
        // deliberately naive: the per-call collect (and the absence of any
        // memoisation) IS the E5 baseline — do not optimise this path
        for next in graph.successors(current).collect::<Vec<_>>() {
            if on_path.contains(&next) {
                continue;
            }
            on_path.push(next);
            if dfs(graph, next, to, on_path) {
                return true;
            }
            on_path.pop();
        }
        false
    }
    let mut on_path = vec![from];
    dfs(graph, from, to, &mut on_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_workflow::builder::ViewBuilder;
    use wolves_workflow::WorkflowBuilder;

    fn figure1() -> (WorkflowSpec, WorkflowView, Vec<TaskId>) {
        let mut b = WorkflowBuilder::new("phylogenomics");
        let names = [
            "Select entries",
            "Split entries",
            "Extract annotations",
            "Curate annotations",
            "Format annotations",
            "Extract sequences",
            "Create alignment",
            "Format alignment",
            "Check other annotations",
            "Process annotations",
            "Build phylo tree",
            "Display tree",
        ];
        let t: Vec<TaskId> = names.iter().map(|n| b.task(*n)).collect();
        for (from, to) in [
            (0, 1),
            (1, 2),
            (1, 5),
            (2, 3),
            (3, 4),
            (4, 10),
            (5, 6),
            (6, 7),
            (7, 10),
            (8, 9),
            (9, 10),
            (10, 11),
        ] {
            b.edge(t[from], t[to]).unwrap();
        }
        let spec = b.build().unwrap();
        let view = ViewBuilder::new(&spec, "figure1b")
            .group("13".to_owned(), vec![t[0], t[1]])
            .group("14".to_owned(), vec![t[2]])
            .group("15".to_owned(), vec![t[5]])
            .group("16".to_owned(), vec![t[3], t[6]])
            .group("17".to_owned(), vec![t[4]])
            .group("18".to_owned(), vec![t[7]])
            .group("19".to_owned(), vec![t[8], t[9], t[10], t[11]])
            .build()
            .unwrap();
        (spec, view, t)
    }

    #[test]
    fn figure1_view_is_unsound_because_of_composite_16() {
        let (spec, view, _) = figure1();
        let report = validate(&spec, &view);
        assert!(!report.is_sound());
        let unsound = report.unsound_composites();
        assert_eq!(unsound.len(), 1);
        let detail = report
            .reports()
            .iter()
            .find(|r| r.composite == unsound[0])
            .unwrap();
        assert_eq!(detail.name, "16");
        // T.in = T.out = {Curate annotations, Create alignment}; neither can
        // reach the other, so both ordered pairs are reported.
        assert_eq!(detail.verdict.witnesses.len(), 2);
    }

    #[test]
    fn figure1_definition_check_finds_the_spurious_14_to_18_dependency() {
        let (spec, view, t) = figure1();
        let report = validate_by_definition(&spec, &view);
        assert!(!report.is_sound());
        assert!(report.missing.is_empty());
        let c14 = view.composite_of(t[2]).unwrap();
        let c18 = view.composite_of(t[7]).unwrap();
        assert!(report.spurious.iter().any(|m| m.from == c14 && m.to == c18));
    }

    #[test]
    fn incremental_definition_check_tracks_an_edit_loop() {
        use wolves_workflow::SpecMutation;
        let (mut spec, view, t) = figure1();
        let _ = spec.reachability();
        let _ = spec.take_dirty();
        let mut index = DefinitionIndex::new(&spec, &view);
        let baseline = index.report(&spec, &view);
        assert_eq!(baseline.spurious.len(), 2);

        let c14 = view.composite_of(t[2]).unwrap();
        let c18 = view.composite_of(t[7]).unwrap();

        // the user repairs the workflow instead of the view: connecting
        // Curate annotations -> Create alignment realises the 14 -> 18 path
        let report = spec
            .apply(SpecMutation::AddDependency {
                from: t[3],
                to: t[6],
            })
            .unwrap();
        assert_eq!(report.class, wolves_graph::DeltaClass::MonotoneSafe);
        let dirty = spec.take_dirty();
        let refreshed = validate_by_definition_incremental(&spec, &view, &dirty, &mut index);
        assert!(!refreshed
            .spurious
            .iter()
            .any(|m| m.from == c14 && m.to == c18));
        // the unrelated 15 -> 17 spurious dependency is still reported
        assert_eq!(refreshed.spurious.len(), 1);
        let fresh = validate_by_definition(&spec, &view);
        assert_eq!(refreshed.spurious, fresh.spurious);
        assert_eq!(refreshed.missing, fresh.missing);

        // undoing the edit runs the decremental path: the refresh re-derives
        // only the touched slots and the spurious dependency reappears
        let report = spec
            .apply(SpecMutation::RemoveDependency {
                from: t[3],
                to: t[6],
            })
            .unwrap();
        assert_eq!(report.class, wolves_graph::DeltaClass::Decremental);
        let dirty = spec.take_dirty();
        assert!(!dirty.is_all());
        let reverted = index.refresh(&spec, &view, &dirty);
        assert_eq!(reverted.spurious.len(), 2);
        let fresh = validate_by_definition(&spec, &view);
        assert_eq!(reverted.spurious, fresh.spurious);
    }

    #[test]
    fn refresh_detects_membership_only_view_edits() {
        use wolves_workflow::{AtomicTask, DataDependency};
        // t0, t1, t2 with the single edge t1 -> t2; view {t0, t1} | {t2}
        let mut spec = WorkflowSpec::new("membership");
        let t: Vec<TaskId> = (0..3)
            .map(|i| spec.add_task(AtomicTask::new(format!("t{i}"))).unwrap())
            .collect();
        spec.add_dependency(t[1], t[2], DataDependency::unnamed())
            .unwrap();
        let mut view = WorkflowView::from_groups(
            &spec,
            "v",
            vec![("ab".into(), vec![t[0], t[1]]), ("c".into(), vec![t[2]])],
        )
        .unwrap();
        let _ = spec.reachability();
        let _ = spec.take_dirty();
        let mut index = DefinitionIndex::new(&spec, &view);
        // dropping t1 from 'ab' keeps the composite-id set identical but
        // changes the membership: the cached rows would still claim
        // ab -> c workflow connectivity through the departed t1
        view.remove_member(t[1]).unwrap();
        let refreshed = index.refresh(&spec, &view, &spec.dirty_rows().clone());
        let fresh = validate_by_definition(&spec, &view);
        assert_eq!(refreshed.spurious, fresh.spurious);
        assert_eq!(refreshed.missing, fresh.missing);
        assert!(refreshed.missing.is_empty());
    }

    #[test]
    fn singleton_views_are_sound_under_all_checks() {
        let (spec, _, _) = figure1();
        let view = WorkflowView::singletons(&spec, "fine");
        assert!(validate(&spec, &view).is_sound());
        assert!(validate_by_definition(&spec, &view).is_sound());
        assert!(validate_naive(&spec, &view, 64).unwrap().is_sound());
    }

    #[test]
    fn naive_check_agrees_with_polynomial_definition_check() {
        let (spec, view, _) = figure1();
        let poly = validate_by_definition(&spec, &view);
        let naive = validate_naive(&spec, &view, 64).unwrap();
        assert_eq!(poly.is_sound(), naive.is_sound());
        assert_eq!(poly.spurious.len(), naive.spurious.len());
        assert_eq!(poly.missing.len(), naive.missing.len());
    }

    #[test]
    fn naive_check_refuses_oversized_inputs() {
        let (spec, view, _) = figure1();
        assert!(validate_naive(&spec, &view, 4).is_none());
    }

    #[test]
    fn proposition_2_1_soundness_implies_definition_soundness() {
        // the corrected Figure 1 view must be sound under both checks
        let (spec, view, _) = figure1();
        let (corrected, _) =
            crate::correct::correct_view(&spec, &view, &crate::correct::StrongCorrector::new())
                .unwrap();
        let prop = validate(&spec, &corrected);
        assert!(prop.is_sound());
        assert!(validate_by_definition(&spec, &corrected).is_sound());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;
        use wolves_graph::traversal::{reachable_set, Direction};
        use wolves_workflow::{AtomicTask, DataDependency};

        /// The pre-bitset-algebra semantics of `validate_by_definition`,
        /// reimplemented on plain BFS so the comparison is independent of
        /// `ReachMatrix`: a quadratic task-pair loop for workflow-level
        /// connectivity, per-pair BFS for view-level connectivity.
        fn pairwise_reference(spec: &WorkflowSpec, view: &WorkflowView) -> DefinitionReport {
            let induced = view.induced_graph(spec);
            let composites: Vec<CompositeTaskId> = view.composite_ids().collect();
            let tasks: Vec<TaskId> = spec.task_ids().collect();
            let mut connected: BTreeSet<(CompositeTaskId, CompositeTaskId)> = BTreeSet::new();
            for &u in &tasks {
                let reach = reachable_set(spec.graph(), &[u], Direction::Forward);
                for &v in &tasks {
                    if u == v || !reach.contains(v.index()) {
                        continue;
                    }
                    let (Some(cu), Some(cv)) = (view.composite_of(u), view.composite_of(v)) else {
                        continue;
                    };
                    if cu != cv {
                        connected.insert((cu, cv));
                    }
                }
            }
            let mut spurious = Vec::new();
            let mut missing = Vec::new();
            for &a in &composites {
                for &b in &composites {
                    if a == b {
                        continue;
                    }
                    let in_view = match (induced.node_of(a), induced.node_of(b)) {
                        (Some(na), Some(nb)) => {
                            reachable_set(&induced.graph, &[na], Direction::Forward)
                                .contains(nb.index())
                        }
                        _ => false,
                    };
                    let in_workflow = connected.contains(&(a, b));
                    match (in_view, in_workflow) {
                        (true, false) => spurious.push(DependencyMismatch { from: a, to: b }),
                        (false, true) => missing.push(DependencyMismatch { from: a, to: b }),
                        _ => {}
                    }
                }
            }
            DefinitionReport { spurious, missing }
        }

        /// Arbitrary specs (DAG when `cyclic` is false, back edges permitted
        /// when true) with an arbitrary partition into composite tasks.
        fn arbitrary_spec_and_view(
            max_nodes: usize,
            cyclic: bool,
        ) -> impl Strategy<Value = (WorkflowSpec, WorkflowView)> {
            (3..max_nodes)
                .prop_flat_map(move |n| {
                    let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
                    let slots = proptest::collection::vec(0..n.div_ceil(2), n..(n + 1));
                    (Just(n), edges, slots)
                })
                .prop_map(move |(n, raw_edges, slots)| {
                    let mut spec = WorkflowSpec::new("prop");
                    let ids: Vec<TaskId> = (0..n)
                        .map(|i| spec.add_task(AtomicTask::new(format!("t{i}"))).unwrap())
                        .collect();
                    for (a, b) in raw_edges {
                        let (from, to) = if cyclic {
                            (a, b)
                        } else {
                            // orient low → high to guarantee a DAG
                            if a < b {
                                (a, b)
                            } else {
                                (b, a)
                            }
                        };
                        if from != to {
                            let _ =
                                spec.add_dependency(ids[from], ids[to], DataDependency::unnamed());
                        }
                    }
                    let slot_count = slots.iter().copied().max().unwrap_or(0) + 1;
                    let mut buckets: Vec<Vec<TaskId>> = vec![Vec::new(); slot_count];
                    for (task, &slot) in ids.iter().zip(&slots) {
                        buckets[slot].push(*task);
                    }
                    let groups: Vec<(String, Vec<TaskId>)> = buckets
                        .into_iter()
                        .filter(|bucket| !bucket.is_empty())
                        .enumerate()
                        .map(|(index, bucket)| (format!("g{index}"), bucket))
                        .collect();
                    let view = WorkflowView::from_groups(&spec, "prop-view", groups)
                        .expect("buckets partition the tasks");
                    (spec, view)
                })
        }

        fn assert_reports_agree(spec: &WorkflowSpec, view: &WorkflowView) {
            let fast = validate_by_definition(spec, view);
            let reference = pairwise_reference(spec, view);
            assert_eq!(fast.spurious, reference.spurious);
            assert_eq!(fast.missing, reference.missing);
        }

        /// Drives a random mutation sequence through `spec.apply`, refreshing
        /// a [`DefinitionIndex`] with the accumulated dirty rows after every
        /// step and asserting the incremental report is identical to a
        /// from-scratch [`validate_by_definition`] — the epoch-incremental
        /// pipeline end to end, over all three delta classes.
        fn assert_incremental_matches_rebuild(
            spec: &mut WorkflowSpec,
            view: &WorkflowView,
            ops: Vec<(usize, usize, usize)>,
        ) {
            use wolves_workflow::SpecMutation;
            let tasks: Vec<TaskId> = spec.task_ids().collect();
            let _ = spec.reachability();
            let _ = spec.take_dirty();
            let mut index = DefinitionIndex::new(spec, view);
            for (op, raw_a, raw_b) in ops {
                let from = tasks[raw_a % tasks.len()];
                let to = tasks[raw_b % tasks.len()];
                if from == to {
                    continue;
                }
                let mutation = if op % 3 == 0 {
                    SpecMutation::RemoveDependency { from, to }
                } else {
                    // raw orientation: back edges (SCC merges and splits
                    // through later removals) are common
                    SpecMutation::AddDependency { from, to }
                };
                if spec.apply(mutation).is_err() {
                    continue; // duplicate insert or missing edge to remove
                }
                let dirty = spec.take_dirty();
                let incremental = index.refresh(spec, view, &dirty);
                let fresh = validate_by_definition(spec, view);
                assert_eq!(incremental.spurious, fresh.spurious);
                assert_eq!(incremental.missing, fresh.missing);
            }
        }

        /// Like [`assert_incremental_matches_rebuild`], but the script also
        /// mutates the *view*: spec-level task removals tracked by
        /// `remove_member`, and membership-only view edits. Exercises the
        /// decremental spec path (SCC splits, cycle un-closing) interleaved
        /// with per-slot view-side re-derivation.
        fn assert_incremental_tracks_spec_and_view_edits(
            spec: &mut WorkflowSpec,
            view: &mut WorkflowView,
            ops: Vec<(usize, usize, usize)>,
        ) {
            use wolves_workflow::SpecMutation;
            let _ = spec.reachability();
            let _ = spec.take_dirty();
            let mut index = DefinitionIndex::new(spec, view);
            for (op, raw_a, raw_b) in ops {
                let tasks: Vec<TaskId> = spec.task_ids().collect();
                if tasks.len() < 4 {
                    break;
                }
                let from = tasks[raw_a % tasks.len()];
                let to = tasks[raw_b % tasks.len()];
                match op % 6 {
                    0 => {
                        if spec
                            .apply(SpecMutation::RemoveDependency { from, to })
                            .is_err()
                        {
                            continue;
                        }
                    }
                    4 => {
                        // spec-level task removal, tracked in the view
                        if spec.apply(SpecMutation::RemoveTask { task: from }).is_err() {
                            continue;
                        }
                        let _ = view.remove_member(from);
                    }
                    5 => {
                        // membership-only view edit (no spec change)
                        if view.remove_member(from).is_err() {
                            continue;
                        }
                    }
                    _ => {
                        if from == to
                            || spec
                                .apply(SpecMutation::AddDependency { from, to })
                                .is_err()
                        {
                            continue;
                        }
                    }
                }
                let dirty = spec.take_dirty();
                let incremental = index.refresh(spec, view, &dirty);
                let fresh = validate_by_definition(spec, view);
                assert_eq!(incremental.spurious, fresh.spurious);
                assert_eq!(incremental.missing, fresh.missing);
            }
        }

        proptest! {
            #[test]
            fn prop_bitset_algebra_matches_pairwise_on_dags(
                (spec, view) in arbitrary_spec_and_view(14, false)
            ) {
                assert_reports_agree(&spec, &view);
            }

            #[test]
            fn prop_incremental_definition_check_matches_rebuild_on_dags(
                (spec, view) in arbitrary_spec_and_view(12, false),
                ops in proptest::collection::vec((0usize..3, 0usize..32, 0usize..32), 1..16)
            ) {
                let mut spec = spec;
                assert_incremental_matches_rebuild(&mut spec, &view, ops);
            }

            #[test]
            fn prop_incremental_definition_check_matches_rebuild_on_cyclic_specs(
                (spec, view) in arbitrary_spec_and_view(10, true),
                ops in proptest::collection::vec((0usize..3, 0usize..32, 0usize..32), 1..16)
            ) {
                let mut spec = spec;
                assert_incremental_matches_rebuild(&mut spec, &view, ops);
            }

            #[test]
            fn prop_bitset_algebra_matches_pairwise_on_cyclic_specs(
                (spec, view) in arbitrary_spec_and_view(12, true)
            ) {
                assert_reports_agree(&spec, &view);
            }

            #[test]
            fn prop_incremental_tracks_spec_and_view_edits_on_dags(
                (spec, view) in arbitrary_spec_and_view(12, false),
                ops in proptest::collection::vec((0usize..6, 0usize..32, 0usize..32), 1..20)
            ) {
                let (mut spec, mut view) = (spec, view);
                assert_incremental_tracks_spec_and_view_edits(&mut spec, &mut view, ops);
            }

            #[test]
            fn prop_incremental_tracks_spec_and_view_edits_on_cyclic_specs(
                (spec, view) in arbitrary_spec_and_view(10, true),
                ops in proptest::collection::vec((0usize..6, 0usize..32, 0usize..32), 1..20)
            ) {
                let (mut spec, mut view) = (spec, view);
                assert_incremental_tracks_spec_and_view_edits(&mut spec, &mut view, ops);
            }

            #[test]
            fn prop_proposition_2_1_never_accepts_what_the_definition_rejects(
                (spec, view) in arbitrary_spec_and_view(12, false)
            ) {
                // Proposition 2.1 soundness ⇒ Definition 2.1 soundness
                if validate(&spec, &view).is_sound() {
                    prop_assert!(validate_by_definition(&spec, &view).is_sound());
                }
            }
        }
    }
}
