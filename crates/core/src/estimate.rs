//! Correction time & quality estimation (paper §3.2, "Workflow View
//! Corrector Module").
//!
//! "To make an estimation of the execution time of correcting the current
//! workflow, we group the workflows which have been corrected in the past
//! according to their sizes and substructures, and report the average running
//! time and quality of each approach for the group that the current workflow
//! belongs to."
//!
//! The registry groups past corrections by a [`WorkloadClass`] — a bucket of
//! composite-task size and internal edge density — and answers estimation
//! queries per corrector strategy.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::time::Duration;

use parking_lot::RwLock;
use wolves_workflow::{TaskId, WorkflowSpec};

use crate::correct::Strategy;

/// The substructure group a composite task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkloadClass {
    /// Composite size bucket: number of atomic tasks rounded up to a power
    /// of two (1, 2, 4, 8, 16, …).
    pub size_bucket: usize,
    /// Internal density decile (0–10): internal edges relative to the
    /// densest possible DAG on the same members.
    pub density_decile: usize,
}

impl WorkloadClass {
    /// Classifies a composite task of `spec` with the given members.
    #[must_use]
    pub fn classify(spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> Self {
        let n = members.len();
        let size_bucket = n.max(1).next_power_of_two();
        let internal_edges = spec
            .dependencies()
            .filter(|(a, b)| members.contains(a) && members.contains(b))
            .count();
        let max_edges = if n < 2 { 1 } else { n * (n - 1) / 2 };
        let density = internal_edges as f64 / max_edges as f64;
        let density_decile = ((density * 10.0).round() as usize).min(10);
        WorkloadClass {
            size_bucket,
            density_decile,
        }
    }
}

/// One recorded correction.
#[derive(Debug, Clone, Copy)]
pub struct CorrectionSample {
    /// Which corrector produced the sample.
    pub strategy: Strategy,
    /// Wall-clock time of the split.
    pub elapsed: Duration,
    /// Quality of the produced split (1.0 when unknown / assumed optimal).
    pub quality: f64,
}

/// Aggregate estimate for one (class, strategy) group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Average running time over the recorded samples.
    pub avg_elapsed: Duration,
    /// Average quality over the recorded samples.
    pub avg_quality: f64,
    /// Number of samples backing the estimate.
    pub samples: usize,
}

/// Thread-safe registry of past corrections, grouped by workload class.
#[derive(Debug, Default)]
pub struct EstimationRegistry {
    groups: RwLock<BTreeMap<(WorkloadClass, &'static str), Vec<CorrectionSample>>>,
}

impl EstimationRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one correction outcome for the given workload class.
    pub fn record(&self, class: WorkloadClass, sample: CorrectionSample) {
        self.groups
            .write()
            .entry((class, sample.strategy.name()))
            .or_default()
            .push(sample);
    }

    /// Number of samples stored across all groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.read().values().map(Vec::len).sum()
    }

    /// `true` if nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the estimate for a workload class and strategy, if samples
    /// exist for that exact class. When the exact class has no samples, the
    /// nearest class (by size bucket, then density) with samples for the
    /// strategy is used; `None` only when the strategy was never recorded.
    #[must_use]
    pub fn estimate(&self, class: WorkloadClass, strategy: Strategy) -> Option<Estimate> {
        let groups = self.groups.read();
        // exact match first
        if let Some(samples) = groups.get(&(class, strategy.name())) {
            return Some(summarise(samples));
        }
        // fall back to the nearest recorded class for the same strategy
        let mut best: Option<(u64, &Vec<CorrectionSample>)> = None;
        for ((other, name), samples) in groups.iter() {
            if *name != strategy.name() || samples.is_empty() {
                continue;
            }
            let size_distance =
                (other.size_bucket as i64 - class.size_bucket as i64).unsigned_abs();
            let density_distance =
                (other.density_decile as i64 - class.density_decile as i64).unsigned_abs();
            let distance = size_distance * 100 + density_distance;
            if best.map_or(true, |(d, _)| distance < d) {
                best = Some((distance, samples));
            }
        }
        best.map(|(_, samples)| summarise(samples))
    }

    /// Produces estimates for all strategies at once — what the demo GUI
    /// shows next to the "Correct View" menu so users can pick an approach.
    #[must_use]
    pub fn estimate_all(&self, class: WorkloadClass) -> BTreeMap<&'static str, Estimate> {
        Strategy::ALL
            .iter()
            .filter_map(|&s| self.estimate(class, s).map(|e| (s.name(), e)))
            .collect()
    }
}

fn summarise(samples: &[CorrectionSample]) -> Estimate {
    let count = samples.len().max(1);
    let total_time: Duration = samples.iter().map(|s| s.elapsed).sum();
    let total_quality: f64 = samples.iter().map(|s| s.quality).sum();
    Estimate {
        avg_elapsed: total_time / count as u32,
        avg_quality: total_quality / count as f64,
        samples: samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_workflow::WorkflowBuilder;

    fn sample(strategy: Strategy, micros: u64, quality: f64) -> CorrectionSample {
        CorrectionSample {
            strategy,
            elapsed: Duration::from_micros(micros),
            quality,
        }
    }

    #[test]
    fn classify_buckets_by_size_and_density() {
        let mut b = WorkflowBuilder::new("w");
        let a = b.task("a");
        let c = b.task("b");
        let d = b.task("c");
        b.chain(&[a, c, d]).unwrap();
        let spec = b.build().unwrap();
        let members: BTreeSet<TaskId> = [a, c, d].into_iter().collect();
        let class = WorkloadClass::classify(&spec, &members);
        assert_eq!(class.size_bucket, 4);
        // 2 internal edges out of 3 possible -> density ~0.67 -> decile 7
        assert_eq!(class.density_decile, 7);
    }

    #[test]
    fn exact_estimates_average_recorded_samples() {
        let registry = EstimationRegistry::new();
        let class = WorkloadClass {
            size_bucket: 8,
            density_decile: 3,
        };
        registry.record(class, sample(Strategy::Weak, 100, 0.5));
        registry.record(class, sample(Strategy::Weak, 300, 0.7));
        let estimate = registry.estimate(class, Strategy::Weak).unwrap();
        assert_eq!(estimate.samples, 2);
        assert_eq!(estimate.avg_elapsed, Duration::from_micros(200));
        assert!((estimate.avg_quality - 0.6).abs() < 1e-9);
        assert!(registry.estimate(class, Strategy::Optimal).is_none());
    }

    #[test]
    fn nearest_class_fallback() {
        let registry = EstimationRegistry::new();
        let near = WorkloadClass {
            size_bucket: 8,
            density_decile: 3,
        };
        let far = WorkloadClass {
            size_bucket: 64,
            density_decile: 9,
        };
        registry.record(near, sample(Strategy::Strong, 50, 0.9));
        registry.record(far, sample(Strategy::Strong, 5000, 0.8));
        let query = WorkloadClass {
            size_bucket: 16,
            density_decile: 4,
        };
        let estimate = registry.estimate(query, Strategy::Strong).unwrap();
        assert_eq!(estimate.avg_elapsed, Duration::from_micros(50));
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        // the registry is the shared sink of the serving layer: many worker
        // threads record correction outcomes while others ask for estimates.
        // No sample may be lost, and the observable sample count must only
        // ever grow.
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 200;
        let registry = EstimationRegistry::new();
        let class_of = |w: usize| WorkloadClass {
            size_bucket: 1 << (w % 4),
            density_decile: w % 10,
        };
        std::thread::scope(|scope| {
            for writer in 0..WRITERS {
                let registry = &registry;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        registry.record(
                            class_of(writer),
                            sample(Strategy::ALL[i % 3], i as u64 + 1, 0.5),
                        );
                    }
                });
            }
            // concurrent readers: estimates and lengths stay consistent and
            // the sample count is monotone while writers are active
            for _ in 0..4 {
                let registry = &registry;
                scope.spawn(move || {
                    let mut last_len = 0;
                    for _ in 0..500 {
                        let len = registry.len();
                        assert!(len >= last_len, "sample count went backwards");
                        assert!(len <= WRITERS * PER_WRITER);
                        last_len = len;
                        if let Some(estimate) = registry.estimate(class_of(0), Strategy::Weak) {
                            assert!(estimate.samples > 0);
                            assert!(estimate.avg_elapsed > Duration::ZERO);
                        }
                    }
                });
            }
        });
        assert_eq!(registry.len(), WRITERS * PER_WRITER);
        // every (class, strategy) group the writers touched is queryable
        for writer in 0..WRITERS {
            for strategy in Strategy::ALL {
                let estimate = registry.estimate(class_of(writer), strategy).unwrap();
                assert!(estimate.samples > 0);
            }
        }
    }

    #[test]
    fn estimate_all_reports_each_recorded_strategy() {
        let registry = EstimationRegistry::new();
        let class = WorkloadClass {
            size_bucket: 4,
            density_decile: 5,
        };
        registry.record(class, sample(Strategy::Weak, 10, 0.6));
        registry.record(class, sample(Strategy::Strong, 20, 0.95));
        registry.record(class, sample(Strategy::Optimal, 4000, 1.0));
        let all = registry.estimate_all(class);
        assert_eq!(all.len(), 3);
        assert!(all["optimal"].avg_elapsed > all["strong"].avg_elapsed);
        assert!(!registry.is_empty());
        assert_eq!(registry.len(), 3);
    }
}
