//! The interactive validate → correct → feedback loop (paper Figure 2 and
//! §3.2 "Workflow View Feedback Module").
//!
//! The demo lets a user load a view, see which composite tasks are unsound,
//! correct the whole view or a single task, then manually merge tasks back
//! ("Create Composite Task") and re-validate until satisfied.
//! [`FeedbackSession`] models exactly this loop as a library API, keeping a
//! history of every iteration.

use wolves_workflow::{CompositeTaskId, WorkflowSpec, WorkflowView};

use crate::correct::{correct_composite, correct_view, CorrectionReport, Corrector};
use crate::error::CoreError;
use crate::validate::{validate, ValidationReport};

/// One step the user (or an automated policy) took within a session.
#[derive(Debug, Clone)]
pub enum SessionStep {
    /// The whole view was corrected with the named corrector.
    CorrectedView {
        /// Corrector used.
        corrector: &'static str,
        /// Number of composite tasks that were split.
        composites_split: usize,
    },
    /// A single composite task was split.
    CorrectedComposite {
        /// Corrector used.
        corrector: &'static str,
        /// The composite that was split.
        composite: CompositeTaskId,
        /// How many parts replaced it.
        parts: usize,
    },
    /// The user merged composite tasks back into one.
    MergedComposites {
        /// Name given to the merged composite.
        name: String,
        /// How many composites were merged.
        merged: usize,
        /// Whether the resulting composite is sound.
        result_sound: bool,
    },
}

/// An interactive view-refinement session over one specification.
#[derive(Debug)]
pub struct FeedbackSession<'a> {
    spec: &'a WorkflowSpec,
    view: WorkflowView,
    history: Vec<SessionStep>,
}

impl<'a> FeedbackSession<'a> {
    /// Starts a session on a view (typically an imported, possibly unsound
    /// one).
    #[must_use]
    pub fn new(spec: &'a WorkflowSpec, view: WorkflowView) -> Self {
        FeedbackSession {
            spec,
            view,
            history: Vec::new(),
        }
    }

    /// The current state of the view.
    #[must_use]
    pub fn view(&self) -> &WorkflowView {
        &self.view
    }

    /// Steps taken so far, oldest first.
    #[must_use]
    pub fn history(&self) -> &[SessionStep] {
        &self.history
    }

    /// Validates the current view (Workflow View Validator module).
    #[must_use]
    pub fn validate(&self) -> ValidationReport {
        validate(self.spec, &self.view)
    }

    /// `true` when the current view is sound and the session can end.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.validate().is_sound()
    }

    /// Corrects every unsound composite task with the given corrector
    /// (Workflow View Corrector module, "Correct View" menu action).
    ///
    /// # Errors
    /// Propagates corrector failures; the session view is unchanged then.
    pub fn correct_all(
        &mut self,
        corrector: &dyn Corrector,
    ) -> Result<CorrectionReport, CoreError> {
        let (corrected, report) = correct_view(self.spec, &self.view, corrector)?;
        self.view = corrected;
        self.history.push(SessionStep::CorrectedView {
            corrector: report.corrector,
            composites_split: report.corrections.len(),
        });
        Ok(report)
    }

    /// Corrects a single composite task ("Split Task" context-menu action).
    ///
    /// # Errors
    /// Fails if the composite is unknown or the corrector refuses it.
    pub fn correct_one(
        &mut self,
        composite: CompositeTaskId,
        corrector: &dyn Corrector,
    ) -> Result<Vec<CompositeTaskId>, CoreError> {
        let outcome = correct_composite(self.spec, &mut self.view, composite, corrector)?;
        self.history.push(SessionStep::CorrectedComposite {
            corrector: corrector.name(),
            composite,
            parts: outcome.replacements.len(),
        });
        Ok(outcome.replacements)
    }

    /// Merges composite tasks into one ("Create Composite Task" feedback
    /// action). The merge is applied even if the result is unsound — exactly
    /// like the demo, where the merged view is sent back to the validator —
    /// and the returned flag tells the caller whether another correction
    /// round is needed.
    ///
    /// # Errors
    /// Fails if any id is unknown.
    pub fn merge(
        &mut self,
        composites: &[CompositeTaskId],
        name: impl Into<String>,
    ) -> Result<(CompositeTaskId, bool), CoreError> {
        let name = name.into();
        let merged = self
            .view
            .merge_composites(composites, name.clone())
            .map_err(CoreError::from)?;
        let sound = crate::soundness::is_sound(
            self.spec,
            self.view
                .composite(merged)
                .map_err(CoreError::from)?
                .members(),
        );
        self.history.push(SessionStep::MergedComposites {
            name,
            merged: composites.len(),
            result_sound: sound,
        });
        Ok((merged, sound))
    }

    /// Finishes the session, returning the refined view.
    #[must_use]
    pub fn finish(self) -> WorkflowView {
        self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correct::{StrongCorrector, WeakCorrector};
    use wolves_workflow::builder::ViewBuilder;
    use wolves_workflow::{TaskId, WorkflowBuilder};

    fn figure1() -> (WorkflowSpec, WorkflowView, Vec<TaskId>) {
        let mut b = WorkflowBuilder::new("phylogenomics");
        let names = [
            "Select entries",
            "Split entries",
            "Extract annotations",
            "Curate annotations",
            "Format annotations",
            "Extract sequences",
            "Create alignment",
            "Format alignment",
            "Check other annotations",
            "Process annotations",
            "Build phylo tree",
            "Display tree",
        ];
        let t: Vec<TaskId> = names.iter().map(|n| b.task(*n)).collect();
        for (from, to) in [
            (0, 1),
            (1, 2),
            (1, 5),
            (2, 3),
            (3, 4),
            (4, 10),
            (5, 6),
            (6, 7),
            (7, 10),
            (8, 9),
            (9, 10),
            (10, 11),
        ] {
            b.edge(t[from], t[to]).unwrap();
        }
        let spec = b.build().unwrap();
        let view = ViewBuilder::new(&spec, "figure1b")
            .group("13".to_owned(), vec![t[0], t[1]])
            .group("14".to_owned(), vec![t[2]])
            .group("15".to_owned(), vec![t[5]])
            .group("16".to_owned(), vec![t[3], t[6]])
            .group("17".to_owned(), vec![t[4]])
            .group("18".to_owned(), vec![t[7]])
            .group("19".to_owned(), vec![t[8], t[9], t[10], t[11]])
            .build()
            .unwrap();
        (spec, view, t)
    }

    #[test]
    fn full_demo_loop_validate_correct_finish() {
        let (spec, view, _) = figure1();
        let mut session = FeedbackSession::new(&spec, view);
        assert!(!session.is_sound());
        let report = session.correct_all(&StrongCorrector::new()).unwrap();
        assert_eq!(report.corrections.len(), 1);
        assert!(session.is_sound());
        assert_eq!(session.history().len(), 1);
        let refined = session.finish();
        assert_eq!(refined.composite_count(), 8);
    }

    #[test]
    fn correcting_a_single_task_only_touches_that_task() {
        let (spec, view, _) = figure1();
        let mut session = FeedbackSession::new(&spec, view);
        let unsound = session.validate().unsound_composites();
        assert_eq!(unsound.len(), 1);
        let replacements = session
            .correct_one(unsound[0], &WeakCorrector::new())
            .unwrap();
        assert_eq!(replacements.len(), 2);
        assert!(session.is_sound());
    }

    #[test]
    fn user_merges_are_validated_again() {
        let (spec, view, t) = figure1();
        let mut session = FeedbackSession::new(&spec, view);
        session.correct_all(&StrongCorrector::new()).unwrap();
        assert!(session.is_sound());
        // user merges composites 13 {Select, Split} and 14 {Extract
        // annotations}: the union {1, 2, 3} receives no input from outside,
        // so it is (vacuously) sound
        let c13 = session.view().composite_of(t[0]).unwrap();
        let c14 = session.view().composite_of(t[2]).unwrap();
        let (merged, sound) = session.merge(&[c13, c14], "Retrieve & annotate").unwrap();
        assert!(sound);
        assert!(session.view().composite(merged).is_ok());
        assert!(session.is_sound());
        // merging the two halves of the corrected composite 16 recreates the
        // original unsound composite, and the session reports it
        let c16a = session.view().composite_of(t[3]).unwrap();
        let c16b = session.view().composite_of(t[6]).unwrap();
        let (_, sound) = session
            .merge(&[c16a, c16b], "Curate & align again")
            .unwrap();
        assert!(!sound);
        assert!(!session.is_sound());
        assert_eq!(session.history().len(), 3);
    }
}
