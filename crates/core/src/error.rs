//! Errors of the soundness / correction layer.

use std::fmt;

/// Errors raised by validators and correctors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The exact (optimal) corrector was asked to split a composite task
    /// larger than its configured limit; the search would be intractable.
    TooLargeForOptimal {
        /// Number of atomic tasks in the composite.
        tasks: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A task referenced by the corrector does not belong to the composite
    /// being split.
    TaskOutsideComposite(wolves_workflow::TaskId),
    /// Error bubbled up from the workflow model.
    Workflow(wolves_workflow::WorkflowError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TooLargeForOptimal { tasks, limit } => write!(
                f,
                "optimal corrector limited to {limit} tasks, composite has {tasks}"
            ),
            CoreError::TaskOutsideComposite(t) => {
                write!(f, "task {t} is not a member of the composite being split")
            }
            CoreError::Workflow(e) => write!(f, "workflow error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Workflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wolves_workflow::WorkflowError> for CoreError {
    fn from(e: wolves_workflow::WorkflowError) -> Self {
        CoreError::Workflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = CoreError::TooLargeForOptimal {
            tasks: 40,
            limit: 18,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("18"));
    }
}
