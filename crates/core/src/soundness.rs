//! Soundness of composite tasks and combinability of task sets
//! (Definitions 2.2 – 2.4 of the paper).

use std::collections::BTreeSet;

use wolves_workflow::{Boundary, TaskId, WorkflowSpec};

/// A witness that a set of atomic tasks is *not* sound: an input boundary
/// task that cannot reach an output boundary task in the workflow
/// specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsoundnessWitness {
    /// The violating member of `T.in`.
    pub input: TaskId,
    /// The unreachable member of `T.out`.
    pub output: TaskId,
}

/// The soundness verdict for one set of atomic tasks.
#[derive(Debug, Clone)]
pub struct SoundnessVerdict {
    /// The boundary that was examined.
    pub boundary: Boundary,
    /// All violating `(input, output)` pairs, in deterministic order. Empty
    /// iff the set is sound.
    pub witnesses: Vec<UnsoundnessWitness>,
}

impl SoundnessVerdict {
    /// `true` iff the examined set is sound (Definition 2.3).
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// Checks whether a set of atomic tasks forms a sound composite task
/// (Definition 2.3): every member of `T.in` must reach every member of
/// `T.out` by a directed path in the workflow specification.
///
/// Sets with an empty input or output boundary are vacuously sound, as are
/// singletons (a task trivially reaches itself).
#[must_use]
pub fn is_sound(spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> bool {
    first_witness(spec, members).is_none()
}

/// Returns the first (in deterministic order) unsoundness witness, or `None`
/// if the set is sound. Cheaper than [`soundness_verdict`] when only a
/// yes/no answer plus one explanation is needed — this is what the
/// correctors call in their inner loops.
#[must_use]
pub fn first_witness(
    spec: &WorkflowSpec,
    members: &BTreeSet<TaskId>,
) -> Option<UnsoundnessWitness> {
    let boundary = Boundary::compute(spec, members);
    let reach = spec.reachability();
    for &input in &boundary.inputs {
        for &output in &boundary.outputs {
            if !reach.reachable(input, output) {
                return Some(UnsoundnessWitness { input, output });
            }
        }
    }
    None
}

/// Computes the full soundness verdict for a set of atomic tasks, listing
/// every violating `(input, output)` pair. The validator uses this to show
/// users *why* a composite task is unsound (the paper's GUI highlights the
/// offending tasks in red).
#[must_use]
pub fn soundness_verdict(spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> SoundnessVerdict {
    let boundary = Boundary::compute(spec, members);
    let reach = spec.reachability();
    let mut witnesses = Vec::new();
    for &input in &boundary.inputs {
        for &output in &boundary.outputs {
            if !reach.reachable(input, output) {
                witnesses.push(UnsoundnessWitness { input, output });
            }
        }
    }
    SoundnessVerdict {
        boundary,
        witnesses,
    }
}

/// Checks whether several disjoint task sets are *combinable*
/// (Definition 2.4): merging them into a single composite task yields a
/// sound composite.
#[must_use]
pub fn are_combinable<'a>(
    spec: &WorkflowSpec,
    sets: impl IntoIterator<Item = &'a BTreeSet<TaskId>>,
) -> bool {
    let union: BTreeSet<TaskId> = sets.into_iter().flatten().copied().collect();
    is_sound(spec, &union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_workflow::WorkflowBuilder;

    /// The workflow of paper Figure 1(a): 12 tasks of the phylogenomic
    /// inference pipeline.
    fn figure1() -> (WorkflowSpec, Vec<TaskId>) {
        let mut b = WorkflowBuilder::new("phylogenomics");
        let names = [
            "Select entries",          // 1 (index 0)
            "Split entries",           // 2
            "Extract annotations",     // 3
            "Curate annotations",      // 4
            "Format annotations",      // 5
            "Extract sequences",       // 6
            "Create alignment",        // 7
            "Format alignment",        // 8
            "Check other annotations", // 9
            "Process annotations",     // 10
            "Build phylo tree",        // 11
            "Display tree",            // 12
        ];
        let t: Vec<TaskId> = names.iter().map(|n| b.task(*n)).collect();
        for (from, to) in [
            (0, 1),   // 1 -> 2
            (1, 2),   // 2 -> 3 annotations
            (1, 5),   // 2 -> 6 sequences
            (2, 3),   // 3 -> 4
            (3, 4),   // 4 -> 5
            (4, 10),  // 5 -> 11
            (5, 6),   // 6 -> 7
            (6, 7),   // 7 -> 8
            (7, 10),  // 8 -> 11
            (8, 9),   // 9 -> 10
            (9, 10),  // 10 -> 11
            (10, 11), // 11 -> 12
        ] {
            b.edge(t[from], t[to]).unwrap();
        }
        (b.build().unwrap(), t)
    }

    #[test]
    fn singletons_are_always_sound() {
        let (spec, t) = figure1();
        for &task in &t {
            let set: BTreeSet<TaskId> = [task].into_iter().collect();
            assert!(is_sound(&spec, &set), "singleton {task} must be sound");
        }
    }

    #[test]
    fn composite_16_of_the_paper_is_unsound() {
        // Composite task (16) of Figure 1(b) groups Curate annotations (4)
        // and Create alignment (7); there is no path 4 -> 7.
        let (spec, t) = figure1();
        let set: BTreeSet<TaskId> = [t[3], t[6]].into_iter().collect();
        assert!(!is_sound(&spec, &set));
        let witness = first_witness(&spec, &set).unwrap();
        assert_eq!(witness.input, t[3]);
        assert_eq!(witness.output, t[6]);
    }

    #[test]
    fn composite_19_of_the_paper_is_sound() {
        // Build Phylo Tree (19) groups tasks 9, 10, 11, 12; it has no
        // external outputs, so it is vacuously sound on the output side.
        let (spec, t) = figure1();
        let set: BTreeSet<TaskId> = [t[8], t[9], t[10], t[11]].into_iter().collect();
        assert!(is_sound(&spec, &set));
    }

    #[test]
    fn connected_chain_groups_are_sound() {
        let (spec, t) = figure1();
        // {3, 4, 5}: annotations processing chain
        let set: BTreeSet<TaskId> = [t[2], t[3], t[4]].into_iter().collect();
        assert!(is_sound(&spec, &set));
    }

    #[test]
    fn verdict_lists_every_violating_pair() {
        let (spec, t) = figure1();
        // {4, 7, 8}: T.in = {4, 7}, T.out = {4, 8}; 4 cannot reach 8 and 7
        // cannot reach 4, so exactly two violating pairs exist.
        let set: BTreeSet<TaskId> = [t[3], t[6], t[7]].into_iter().collect();
        let verdict = soundness_verdict(&spec, &set);
        assert!(!verdict.is_sound());
        assert_eq!(verdict.witnesses.len(), 2);
        let pairs: Vec<(TaskId, TaskId)> = verdict
            .witnesses
            .iter()
            .map(|w| (w.input, w.output))
            .collect();
        assert!(pairs.contains(&(t[3], t[7])));
        assert!(pairs.contains(&(t[6], t[3])));
    }

    #[test]
    fn combinability_follows_definition() {
        let (spec, t) = figure1();
        let a: BTreeSet<TaskId> = [t[2]].into_iter().collect(); // 3
        let b: BTreeSet<TaskId> = [t[3]].into_iter().collect(); // 4
        let c: BTreeSet<TaskId> = [t[6]].into_iter().collect(); // 7
        assert!(are_combinable(&spec, [&a, &b]));
        assert!(!are_combinable(&spec, [&b, &c]));
    }

    #[test]
    fn whole_workflow_is_vacuously_sound() {
        let (spec, t) = figure1();
        let all: BTreeSet<TaskId> = t.iter().copied().collect();
        assert!(is_sound(&spec, &all));
    }

    #[test]
    fn external_detours_do_not_rescue_soundness_in_a_dag() {
        // a -> x -> b with the set {a, b}: the definition does allow the
        // witness path a -> b to run through the external task x, but the
        // detour also puts a into T.out (edge to x) and b into T.in (edge
        // from x), and the extra pair (b, a) has no path. In a DAG this
        // always happens, so a composite whose only connections run outside
        // of it is unsound.
        let mut builder = WorkflowBuilder::new("reentrant");
        let a = builder.task("a");
        let x = builder.task("x");
        let b = builder.task("b");
        let s = builder.task("s");
        let t = builder.task("t");
        builder.edge(a, x).unwrap();
        builder.edge(x, b).unwrap();
        builder.edge(s, a).unwrap();
        builder.edge(b, t).unwrap();
        let spec = builder.build().unwrap();
        let set: BTreeSet<TaskId> = [a, b].into_iter().collect();
        assert!(!is_sound(&spec, &set));
        let witness = first_witness(&spec, &set).unwrap();
        assert_eq!((witness.input, witness.output), (b, a));
    }
}
