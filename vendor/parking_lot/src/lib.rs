//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! Wraps the standard-library synchronisation primitives behind
//! `parking_lot`'s non-poisoning API (guards are returned directly instead of
//! `Result`s). Performance characteristics are those of `std::sync` — good
//! enough for the estimation registry's coarse-grained locking; swap in the
//! real crate when the registry becomes a contended hot path.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// Re-export of the standard read guard type.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-export of the standard write guard type.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Re-export of the standard mutex guard type.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
        assert_eq!(lock.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_write_fails_while_read_held() {
        let lock = RwLock::new(0u32);
        let guard = lock.read();
        assert!(lock.try_write().is_none());
        drop(guard);
        assert!(lock.try_write().is_some());
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
