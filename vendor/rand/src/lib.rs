//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free implementation of exactly the API surface the
//! WOLVES crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is a SplitMix64 — deterministic for a given seed, which is
//! all the workload generators and execution simulators require. It is NOT
//! cryptographically secure and makes no cross-version stability promise
//! beyond this workspace.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be created from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample a value of type `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` (matching the real `rand` crate).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} outside [0, 1]"
        );
        // 53 high bits give a uniform double in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The "standard" RNG of the shim: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // pre-mix the seed once so that small consecutive seeds do not
            // produce visibly correlated first draws
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014)
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let x: u64 = rng.gen_range(5..5_000);
            assert!((5..5_000).contains(&x));
            let y = rng.gen_range(2usize..=3);
            assert!((2..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
