//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the API the WOLVES benches use — benchmark
//! groups, [`BenchmarkId`], `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark is warmed up briefly, then timed in batches for roughly
//! the configured measurement time; the best batch mean is reported as
//! ns/iter, which is enough to compare the correctors' asymptotics.
//!
//! When invoked by `cargo test` (criterion receives `--test`), every
//! benchmark body runs exactly once so the suite stays fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id with a function name and a parameter rendered via
    /// [`Display`] (e.g. the input size).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id carrying only a parameter (criterion's
    /// `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Best observed mean, in nanoseconds per iteration.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the best batch mean for the caller to print.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.result_ns = 0.0;
            return;
        }

        // warm-up: run until the warm-up budget is spent, measuring a rough
        // per-iteration cost to size the batches
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // measurement: `sample_size` batches within the measurement budget
        let budget = self.measurement_time.as_secs_f64();
        let batch_iters =
            ((budget / self.sample_size as f64) / per_iter.max(1e-9)).clamp(1.0, 1e7) as u64;
        let mut best = f64::INFINITY;
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let mean = start.elapsed().as_secs_f64() / batch_iters as f64;
            best = best.min(mean);
            if run_start.elapsed().as_secs_f64() > budget * 2.0 {
                break;
            }
        }
        self.result_ns = best * 1e9;
    }
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| routine(b));
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, |b| routine(b, input));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&self, id: &BenchmarkId, routine: F) {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result_ns: 0.0,
        };
        routine(&mut bencher);
        let label = format!("{}/{}", self.name, id.render());
        if self.criterion.test_mode {
            println!("test {label} ... ok (ran once, --test mode)");
        } else {
            println!("{label:<60} {:>14.1} ns/iter", bencher.result_ns);
        }
    }

    /// Ends the group (kept for API compatibility; prints a separator).
    pub fn finish(self) {
        if !self.criterion.test_mode {
            println!();
        }
    }
}

/// Entry point mirroring criterion's `Criterion` configuration struct.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` / `cargo bench` pass harness flags straight through to
        // harness = false bench binaries; `--test` means "just check it runs"
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Kept for compatibility with criterion's CLI handling; the shim parses
    /// its arguments in [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("run", &mut routine);
        group.finish();
        self
    }
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("weak", 25).render(), "weak/25");
        assert_eq!(BenchmarkId::from_parameter(7).render(), "7");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        let mut ran = 0u32;
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("g", 1), &3u32, |b, &x| b.iter(|| x + 1));
        group.finish();
        assert!(ran >= 1);
    }
}
