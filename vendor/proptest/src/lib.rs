//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal implementation of the API surface its tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * integer-range and tuple strategies, [`strategy::Just`],
//! * [`collection::vec`],
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest: value generation is seeded
//! deterministically per test case (case index) and assertion macros are
//! plain `assert!`s. Shrinking is implemented at the **random-tape** level
//! (the Hypothesis approach): generation records every raw `u64` the
//! strategies draw, and on failure the runner greedily rewrites individual
//! draws (`0`, then halving — integers shrink towards their range start,
//! vectors bisect through their length draw), replaying the modified tape
//! through the same strategies. The loop is bounded by
//! [`test_runner::ProptestConfig::max_shrink_iters`]; the minimal still-
//! failing case is re-run uncaught so the test fails with the *shrunken*
//! counterexample's assertion instead of the original (often huge) one.

#![forbid(unsafe_code)]

/// Deterministic test-case RNG, run configuration and the property runner.
pub mod test_runner {
    use crate::strategy::Strategy;

    /// SplitMix64 generator used to derive all test-case values. Every
    /// emitted `u64` is recorded on a tape so failing cases can be shrunk by
    /// replaying a rewritten tape (see the crate docs).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
        tape: Vec<u64>,
        position: usize,
        replay: bool,
    }

    impl TestRng {
        /// Creates a recording generator for the given test-case index.
        pub fn deterministic(case: u64) -> Self {
            // golden-ratio offset separates neighbouring case streams
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF_CAFE_F00D,
                tape: Vec::new(),
                position: 0,
                replay: false,
            }
        }

        /// Creates a generator replaying a recorded tape; draws past the end
        /// of the tape return `0` (the smallest value).
        pub fn replaying(tape: &[u64]) -> Self {
            TestRng {
                state: 0,
                tape: tape.to_vec(),
                position: 0,
                replay: true,
            }
        }

        /// Returns the next pseudo-random `u64` (recorded or replayed).
        pub fn next_u64(&mut self) -> u64 {
            let value = if self.position < self.tape.len() {
                self.tape[self.position]
            } else if self.replay {
                0
            } else {
                self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let fresh = z ^ (z >> 31);
                self.tape.push(fresh);
                fresh
            };
            self.position += 1;
            value
        }

        /// Returns a value uniformly distributed in `[0, bound)`. The modulo
        /// keeps any replayed tape value in bounds, which is what makes tape
        /// rewriting safe.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }

        fn into_tape(self) -> Vec<u64> {
            self.tape
        }
    }

    /// Configuration accepted by the `proptest!` macro's
    /// `#![proptest_config(..)]` attribute.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Upper bound on shrink attempts (replays of a rewritten tape)
        /// after a failing case — the fixed iteration cap that keeps
        /// shrinking from dominating a failing test run.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// Creates a configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 512,
            }
        }
    }

    /// Runs `test` over `config.cases` generated inputs; on failure, shrinks
    /// the recorded random tape and re-runs the minimal still-failing input
    /// uncaught, so the test reports the smallest counterexample found.
    ///
    /// This is the engine behind the [`crate::proptest!`] macro.
    pub fn run_property<S, F>(config: &ProptestConfig, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value),
    {
        for case in 0..u64::from(config.cases) {
            let mut rng = TestRng::deterministic(case);
            let value = strategy.new_value(&mut rng);
            let tape = rng.into_tape();
            if attempt(&mut test, value) {
                continue;
            }
            let (minimal, steps, attempts) =
                shrink_tape(strategy, tape, config.max_shrink_iters, &mut test);
            eprintln!(
                "proptest shim: case {case} failed; accepted {steps} shrink step(s) over \
                 {attempts} attempt(s); re-running the minimal counterexample:"
            );
            let mut rng = TestRng::replaying(&minimal);
            test(strategy.new_value(&mut rng));
            panic!("proptest shim: the shrunken case passed on re-run; the property is flaky");
        }
    }

    /// Runs one case, catching its panic. `true` means the case passed.
    fn attempt<T>(test: &mut impl FnMut(T), value: T) -> bool {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value))).is_ok()
    }

    /// Greedy bounded tape shrinking: for each draw try `0`, then halving,
    /// keeping any rewrite under which the property still fails. Halving a
    /// range draw halves the integer (towards the range start); halving a
    /// `vec` length draw bisects the vector. The panic hook is silenced for
    /// the duration so the (expected) failures of shrink attempts don't spam
    /// stderr; note the hook is process-global, so concurrent failing tests
    /// may print less during someone else's shrink phase.
    fn shrink_tape<S: Strategy>(
        strategy: &S,
        mut tape: Vec<u64>,
        max_attempts: u32,
        test: &mut impl FnMut(S::Value),
    ) -> (Vec<u64>, usize, usize) {
        let previous_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut attempts = 0usize;
        let mut steps = 0usize;
        'outer: loop {
            let mut improved = false;
            for index in 0..tape.len() {
                for candidate in [0u64, tape[index] / 2] {
                    if candidate == tape[index] {
                        continue;
                    }
                    if attempts >= max_attempts as usize {
                        break 'outer;
                    }
                    attempts += 1;
                    let mut rewritten = tape.clone();
                    rewritten[index] = candidate;
                    let mut rng = TestRng::replaying(&rewritten);
                    let value = strategy.new_value(&mut rng);
                    if !attempt(test, value) {
                        tape = rewritten;
                        steps += 1;
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        std::panic::set_hook(previous_hook);
        (tape, steps, attempts)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy that always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds for the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts two expressions are equal for the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts two expressions are not equal for the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)` item
/// becomes a regular test running the body over `cases` generated inputs
/// through [`test_runner::run_property`] (bounded tape shrinking included).
#[macro_export]
macro_rules! proptest {
    (@impl $config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strat,)*);
                $crate::test_runner::run_property(&config, &strategies, |($($pat,)*)| $body);
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{run_property, TestRng};

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic(0);
        let strat = (3usize..9, 0u8..=1);
        for _ in 0..200 {
            let (a, b) = strat.new_value(&mut rng);
            assert!((3..9).contains(&a));
            assert!(b <= 1);
        }
    }

    #[test]
    fn vec_lengths_respect_the_range() {
        let mut rng = TestRng::deterministic(1);
        let strat = crate::collection::vec(0usize..5, 2..20);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let mut rng = TestRng::deterministic(2);
        let strat = (2usize..6).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n, 1..4)));
        for _ in 0..100 {
            let (n, xs) = strat.new_value(&mut rng);
            assert!(xs.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn cases_are_deterministic_per_index() {
        let strat = (0usize..1000,).prop_map(|(x,)| x * 2);
        let mut a = TestRng::deterministic(5);
        let mut b = TestRng::deterministic(5);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    #[test]
    fn replaying_past_the_tape_yields_zeroes() {
        let mut recording = TestRng::deterministic(3);
        let strat = (0usize..100, 0usize..100);
        let _ = strat.new_value(&mut recording);
        let mut replaying = TestRng::replaying(&[]);
        assert_eq!(strat.new_value(&mut replaying), (0, 0));
    }

    #[test]
    fn shrinking_minimises_an_integer_counterexample() {
        // the property fails for x >= 10 over 0..1000; shrinking must land
        // in [10, 19] (one more halving would make the case pass)
        let observed = std::sync::Mutex::new(Vec::<usize>::new());
        let config = ProptestConfig::with_cases(4);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_property(&config, &(0usize..1000,), |(x,)| {
                observed.lock().unwrap().push(x);
                assert!(x < 10, "x = {x}");
            });
        }));
        assert!(outcome.is_err(), "the property must fail");
        let minimal = *observed
            .lock()
            .unwrap()
            .last()
            .expect("at least one case ran");
        assert!(
            (10..20).contains(&minimal),
            "shrinking should reach [10, 20), got {minimal}"
        );
    }

    #[test]
    fn shrinking_bisects_vectors() {
        // fails whenever the vec has >= 4 elements: the minimal
        // counterexample is any 4-element vector, reached by halving the
        // length draw
        let observed = std::sync::Mutex::new(Vec::<usize>::new());
        let config = ProptestConfig::with_cases(8);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_property(
                &config,
                &(crate::collection::vec(0usize..100, 0..32),),
                |(xs,)| {
                    observed.lock().unwrap().push(xs.len());
                    assert!(xs.len() < 4, "len = {}", xs.len());
                },
            );
        }));
        assert!(outcome.is_err(), "the property must fail");
        let minimal = *observed.lock().unwrap().last().unwrap();
        assert!(
            (4..8).contains(&minimal),
            "shrinking should bisect towards 4 elements, got {minimal}"
        );
    }

    #[test]
    fn shrink_attempts_respect_the_iteration_cap() {
        let runs = std::sync::Mutex::new(0usize);
        let config = ProptestConfig {
            cases: 1,
            max_shrink_iters: 7,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_property(&config, &(0u64..u64::MAX,), |(_x,)| {
                *runs.lock().unwrap() += 1;
                panic!("always fails");
            });
        }));
        assert!(outcome.is_err());
        // 1 original failure + at most 7 shrink attempts + 1 final re-run
        assert!(*runs.lock().unwrap() <= 9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_round_trips((a, b) in (0usize..10, 0usize..10), c in 0u8..=3) {
            prop_assert!(a < 10, "a = {a}");
            prop_assert!(b < 10);
            prop_assert_eq!(u32::from(c) <= 3, true);
            prop_assert_ne!(a + b + usize::from(c), 100);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_also_parses(x in 0usize..4) {
            prop_assert!(x < 4);
        }
    }
}
