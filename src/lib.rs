//! # wolves
//!
//! Umbrella crate of the WOLVES reproduction — *"WOLVES: Achieving Correct
//! Provenance Analysis by Detecting and Resolving Unsound Workflow Views"*
//! (Sun, Liu, Natarajan, Davidson, Chen — VLDB 2009).
//!
//! The crate re-exports the public API of the workspace members so
//! applications can depend on a single crate:
//!
//! * [`graph`] — directed-graph substrate (reachability, condensation, DOT).
//! * [`workflow`] — workflow specifications, views, composite-task
//!   boundaries.
//! * [`core`] — soundness theory, the validator and the three correctors
//!   (weak / strong local optimal, exact optimal).
//! * [`moml`] — MOML and native text import/export.
//! * [`repo`] — paper fixtures (Figures 1 and 3) and synthetic workload
//!   generators.
//! * [`provenance`] — execution simulation and view-level provenance
//!   analysis.
//! * [`service`] — the concurrent serving layer: sharded workflow store,
//!   line-framed TCP protocol, thread-pool server and client.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the system inventory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use wolves_core as core;
pub use wolves_graph as graph;
pub use wolves_moml as moml;
pub use wolves_provenance as provenance;
pub use wolves_repo as repo;
pub use wolves_service as service;
pub use wolves_workflow as workflow;

/// Convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use wolves_core::correct::{
        correct_view, Corrector, OptimalCorrector, Split, Strategy, StrongCorrector, WeakCorrector,
    };
    pub use wolves_core::feedback::FeedbackSession;
    pub use wolves_core::validate::{validate, validate_by_definition, DefinitionIndex};
    pub use wolves_provenance::{
        compare_to_ground_truth, view_level_provenance, workflow_level_provenance,
    };
    pub use wolves_workflow::builder::ViewBuilder;
    pub use wolves_workflow::{
        AtomicTask, CompositeTask, CompositeTaskId, SpecMutation, TaskId, WorkflowBuilder,
        WorkflowSpec, WorkflowView,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired_up() {
        let fixture = crate::repo::figure1();
        let report = crate::core::validate(&fixture.spec, &fixture.view);
        assert!(!report.is_sound());
    }
}
