//! Quickstart: build a workflow and a view, detect that the view is unsound,
//! and correct it with each of the three correctors.
//!
//! Run with `cargo run --example quickstart`.

use wolves::prelude::*;

fn main() {
    // 1. Describe a small analysis workflow: data is fetched, split into two
    //    branches (quality control and feature extraction) and joined in a
    //    final report.
    let mut builder = WorkflowBuilder::new("quickstart-analysis");
    let fetch = builder.task("Fetch data");
    let split = builder.task("Split samples");
    let qc = builder.task("Quality control");
    let qc_report = builder.task("QC report");
    let features = builder.task("Extract features");
    let model = builder.task("Fit model");
    let report = builder.task("Final report");
    builder
        .chain(&[fetch, split, qc, qc_report, report])
        .unwrap();
    builder.chain(&[split, features, model, report]).unwrap();
    let spec = builder.build().expect("the workflow is a DAG");

    // 2. A user groups tasks into composite tasks — accidentally putting the
    //    two unrelated middle steps of both branches into one composite.
    let view = ViewBuilder::new(&spec, "user-view")
        .group("Preparation", vec![fetch, split])
        .group("Processing", vec![qc, features]) // <- unsound!
        .group("QC reporting", vec![qc_report])
        .group("Modelling", vec![model])
        .group("Reporting", vec![report])
        .build()
        .expect("the view partitions the workflow");

    // 3. Validate the view (Proposition 2.1: check every composite task).
    let validation = validate(&spec, &view);
    println!("view '{}' sound? {}", view.name(), validation.is_sound());
    for composite_report in validation.reports() {
        if !composite_report.verdict.is_sound() {
            println!(
                "  unsound composite '{}' — {} violating (input, output) pairs",
                composite_report.name,
                composite_report.verdict.witnesses.len()
            );
        }
    }

    // 4. Correct the view with each strategy and compare the results.
    for strategy in Strategy::ALL {
        let corrector = strategy.corrector();
        let (corrected, correction) =
            correct_view(&spec, &view, corrector.as_ref()).expect("correction succeeds");
        println!(
            "{:<8} corrector: {} -> {} composite tasks ({} split)",
            strategy.name(),
            correction.composites_before,
            correction.composites_after,
            correction.corrections.len()
        );
        assert!(validate(&spec, &corrected).is_sound());
    }

    // 5. The corrected view now answers provenance queries correctly.
    let (corrected, _) = correct_view(&spec, &view, &StrongCorrector::new()).unwrap();
    let truth = workflow_level_provenance(&spec, model);
    let answer = view_level_provenance(&spec, &corrected, model);
    let accuracy = compare_to_ground_truth(&truth, &answer);
    println!(
        "provenance of 'Fit model' through the corrected view: precision {:.2}, recall {:.2}",
        accuracy.precision, accuracy.recall
    );
}
