//! Repository audit: generate a synthetic workflow repository (standing in
//! for Kepler / myExperiment.org), audit every stored view for soundness,
//! correct the unsound ones, and print summary statistics — the batch-mode
//! counterpart of the interactive demo.
//!
//! Run with `cargo run --example repository_audit [seed-count]`.

use wolves::core::correct::{correct_view, Strategy};
use wolves::core::estimate::{CorrectionSample, EstimationRegistry, WorkloadClass};
use wolves::core::validate::validate;
use wolves::repo::suite::standard_suite;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let cases = standard_suite(0..seeds);
    println!(
        "audited repository: {} workflow/view pairs (seeds 0..{seeds})",
        cases.len()
    );

    let registry = EstimationRegistry::new();
    let mut sound = 0usize;
    let mut unsound = 0usize;
    let mut composites_split = 0usize;

    for case in &cases {
        let report = validate(&case.spec, &case.view);
        if report.is_sound() {
            sound += 1;
            continue;
        }
        unsound += 1;
        let unsound_ids = report.unsound_composites();
        println!(
            "  {:<28} {} unsound composite task(s)",
            case.name,
            unsound_ids.len()
        );
        // correct with the strong corrector and record the outcome in the
        // estimation registry (what the demo uses to predict future costs)
        let corrector = Strategy::Strong.corrector();
        let (corrected, correction) =
            correct_view(&case.spec, &case.view, corrector.as_ref()).expect("correction succeeds");
        assert!(validate(&case.spec, &corrected).is_sound());
        composites_split += correction.corrections.len();
        for outcome in &correction.corrections {
            let members = case
                .view
                .composite(outcome.original)
                .expect("original composite exists")
                .members()
                .clone();
            let class = WorkloadClass::classify(&case.spec, &members);
            registry.record(
                class,
                CorrectionSample {
                    strategy: Strategy::Strong,
                    elapsed: outcome.elapsed,
                    quality: 1.0,
                },
            );
        }
    }

    println!();
    println!("sound views            : {sound}");
    println!("unsound views          : {unsound}");
    println!("composite tasks split  : {composites_split}");
    println!("recorded samples       : {}", registry.len());
    // show what the estimator would now predict for a mid-sized composite
    let class = WorkloadClass {
        size_bucket: 8,
        density_decile: 3,
    };
    if let Some(estimate) = registry.estimate(class, Strategy::Strong) {
        println!(
            "estimated strong-corrector time for an 8-task composite: {:.1?} (from {} samples)",
            estimate.avg_elapsed, estimate.samples
        );
    }
}
