//! The paper's running example (Figure 1): phylogenomic inference of protein
//! biological function, its unsound view, the provenance error the view
//! causes, and the correction that fixes it.
//!
//! Run with `cargo run --example phylogenomics`.

use wolves::core::correct::{correct_view, StrongCorrector};
use wolves::core::validate::{validate, validate_by_definition};
use wolves::provenance::{
    compare_to_ground_truth, view_level_provenance, workflow_level_provenance,
};
use wolves::repo::figure1;
use wolves::workflow::render::{describe_spec, describe_view};

fn main() {
    let fixture = figure1();
    println!("{}", describe_spec(&fixture.spec));
    println!("{}", describe_view(&fixture.spec, &fixture.view));

    // The validator flags composite task (16) — Curate annotations grouped
    // with Create alignment — as unsound.
    let validation = validate(&fixture.spec, &fixture.view);
    for report in validation.reports() {
        if !report.verdict.is_sound() {
            println!("unsound composite task: {}", report.name);
            for witness in &report.verdict.witnesses {
                let input = fixture.spec.task(witness.input).unwrap();
                let output = fixture.spec.task(witness.output).unwrap();
                println!(
                    "  no path from '{}' (T.in) to '{}' (T.out)",
                    input.name, output.name
                );
            }
        }
    }

    // The definition-level check exposes the consequence: a spurious
    // view-level dependency from composite 14 (annotations) to composite 18
    // (formatted alignment).
    let definition = validate_by_definition(&fixture.spec, &fixture.view);
    println!(
        "spurious view-level dependencies: {}",
        definition.spurious.len()
    );

    // Provenance of the formatted alignment (task 8) through the unsound
    // view wrongly includes the annotation extraction (task 3).
    let subject = fixture.task(8);
    let truth = workflow_level_provenance(&fixture.spec, subject);
    let before = view_level_provenance(&fixture.spec, &fixture.view, subject);
    let before_accuracy = compare_to_ground_truth(&truth, &before);
    println!(
        "provenance of 'Format alignment' via the unsound view: precision {:.2} ({} spurious tasks)",
        before_accuracy.precision,
        before_accuracy.spurious.len()
    );

    // Correcting the view splits composite 16 into its two sound halves and
    // restores exact provenance.
    let (corrected, report) =
        correct_view(&fixture.spec, &fixture.view, &StrongCorrector::new()).unwrap();
    println!(
        "corrected with the strong corrector: {} -> {} composite tasks",
        report.composites_before, report.composites_after
    );
    let after = view_level_provenance(&fixture.spec, &corrected, subject);
    let after_accuracy = compare_to_ground_truth(&truth, &after);
    println!(
        "provenance via the corrected view: precision {:.2}, recall {:.2}",
        after_accuracy.precision, after_accuracy.recall
    );
    assert!(after_accuracy.is_exact());
}
