//! Provenance analysis through views: simulate executions of a generated
//! workflow, query lineage at the workflow level and at the view level, and
//! measure both the query-cost savings and the damage an unsound view does
//! to provenance precision.
//!
//! Run with `cargo run --example provenance_analysis`.

use wolves::core::correct::{correct_view, StrongCorrector};
use wolves::core::validate::validate;
use wolves::provenance::{
    compare_to_ground_truth, simulate_execution, view_level_provenance, workflow_level_provenance,
};
use wolves::repo::generate::{layered_workflow, LayeredConfig};
use wolves::repo::views::topological_block_view;

fn main() {
    // a mid-sized layered analysis workflow and a coarse user view over it
    let spec = layered_workflow(&LayeredConfig::sized(60), 2024);
    let view = topological_block_view(&spec, 5, "coarse-view").expect("view is a partition");
    println!(
        "workflow '{}': {} tasks, {} dependencies; view '{}': {} composite tasks",
        spec.name(),
        spec.task_count(),
        spec.dependency_count(),
        view.name(),
        view.composite_count()
    );

    // simulate a few runs — the provenance graphs a workflow engine would log
    for run in 0..3u64 {
        let execution = simulate_execution(&spec, run);
        println!(
            "run {run}: {} invocations, {} data items",
            execution.invocation_count(),
            execution.data_item_count()
        );
    }

    let report = validate(&spec, &view);
    println!(
        "view is {} ({} unsound composite tasks)",
        if report.is_sound() {
            "sound"
        } else {
            "UNSOUND"
        },
        report.unsound_composites().len()
    );
    let (corrected, _) = correct_view(&spec, &view, &StrongCorrector::new()).unwrap();

    // compare provenance answers for every task with non-trivial lineage
    let mut spurious_total = 0usize;
    let mut queries = 0usize;
    let mut view_edges = 0usize;
    let mut workflow_edges = 0usize;
    let mut corrected_exact = 0usize;
    for subject in spec.task_ids() {
        let truth = workflow_level_provenance(&spec, subject);
        if truth.tasks.is_empty() {
            continue;
        }
        queries += 1;
        workflow_edges += truth.edges_traversed;
        let unsound_answer = view_level_provenance(&spec, &view, subject);
        view_edges += unsound_answer.edges_traversed;
        spurious_total += compare_to_ground_truth(&truth, &unsound_answer)
            .spurious
            .len();
        let corrected_answer = view_level_provenance(&spec, &corrected, subject);
        if compare_to_ground_truth(&truth, &corrected_answer)
            .spurious
            .is_empty()
        {
            corrected_exact += 1;
        }
    }
    println!("provenance queries evaluated      : {queries}");
    println!("spurious tasks via unsound view   : {spurious_total}");
    println!("queries with no spurious tasks via corrected view: {corrected_exact}/{queries}");
    println!(
        "mean edges traversed: view level {:.1}, workflow level {:.1}",
        view_edges as f64 / queries as f64,
        workflow_edges as f64 / queries as f64
    );
}
